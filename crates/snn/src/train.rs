//! Surrogate-gradient learning (SGL): BPTT over the unrolled SNN.
//!
//! After conversion, the paper fine-tunes the SNN in the spike domain,
//! jointly training weights, thresholds and leaks [7]. The spike function
//! is discontinuous, so the backward pass uses a boxcar surrogate
//! (`∂s/∂u ≈ 1/(2V^th)` for membrane potentials in `[0, 2V^th]`, matching
//! the paper's `∂s'/∂s ≈ 1 on [0, 2αμ]`), with the membrane reset treated
//! as detached (standard in DIET-SNN-style training).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use ull_data::{Augment, Dataset};
use ull_nn::{cross_entropy_grad, cross_entropy_loss, Param, SgdConfig, TrainError};
use ull_tensor::conv::conv2d_backward;
use ull_tensor::pool::{avgpool2d_backward, maxpool2d_backward};
use ull_tensor::{matmul, matmul_transpose_a, Tensor};

use crate::network::{SnnNetwork, SnnOp, SnnTape, StepAux};
use crate::stats::SpikeStats;

impl SnnNetwork {
    /// BPTT backward pass: accumulates gradients of the mean cross-entropy
    /// (whose logit-gradient is `grad_logits`) into every parameter.
    ///
    /// # Panics
    ///
    /// Panics if the tape does not belong to this network or shapes
    /// disagree.
    pub fn backward(&mut self, tape: &SnnTape, grad_logits: &Tensor) {
        assert_eq!(
            tape.acts.first().map(|a| a.len()),
            Some(self.nodes().len()),
            "tape does not match network"
        );
        let t_steps = tape.steps;
        // dL/d(out_t) — logits are the mean over steps.
        let g_out_t = grad_logits.scale(1.0 / t_steps as f32);
        // Gradient w.r.t. each spike node's membrane U(t), carried backward
        // in time.
        let mut g_state: Vec<Option<Tensor>> = vec![None; self.nodes().len()];
        let output = self.output();
        for t in (0..t_steps).rev() {
            let mut g_node: Vec<Option<Tensor>> = vec![None; self.nodes().len()];
            g_node[output] = Some(g_out_t.clone());
            for i in (0..self.nodes().len()).rev() {
                let inputs = self.nodes()[i].inputs.clone();
                let g_spike_out = g_node[i].take();
                let has_state = g_state[i].is_some();
                if g_spike_out.is_none()
                    && !(has_state && matches!(self.nodes()[i].op, SnnOp::Spike(_)))
                {
                    continue;
                }
                match &mut self.nodes_mut()[i].op {
                    SnnOp::Input => {}
                    SnnOp::Conv2d { weight, bias, geo } => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let x = &tape.acts[t][inputs[0]];
                        let (dx, dw, db) = conv2d_backward(x, &weight.value, &g, *geo);
                        weight.grad.add_assign(&dw);
                        if let Some(b) = bias {
                            b.grad.add_assign(&db);
                        }
                        accumulate(&mut g_node[inputs[0]], dx);
                    }
                    SnnOp::Linear { weight, bias } => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let x = &tape.acts[t][inputs[0]];
                        let dx = matmul(&g, &weight.value);
                        let dw = matmul_transpose_a(&g, x);
                        weight.grad.add_assign(&dw);
                        if let Some(b) = bias {
                            b.grad.add_assign(&g.sum_rows());
                        }
                        accumulate(&mut g_node[inputs[0]], dx);
                    }
                    SnnOp::Spike(layer) => {
                        let (u_temp, u_prev) = match &tape.aux[t][i] {
                            StepAux::Spike { u_temp, u_prev } => (u_temp, u_prev),
                            _ => panic!("tape entry ({t},{i}) missing spike aux"),
                        };
                        let v = layer.v_th.scalar_value();
                        let lam = layer.leak.scalar_value();
                        let amp = layer.amp;
                        let inv2v = 1.0 / (2.0 * v.max(1e-6));
                        // Boxcar surrogate window 0 ≤ u ≤ 2V^th.
                        let win = u_temp.map(|u| if u >= 0.0 && u <= 2.0 * v { 1.0 } else { 0.0 });
                        // dL/dU_temp = g_s·amp·win/(2v) + g_state (detached reset).
                        let mut g_u = match &g_spike_out {
                            Some(gs) => {
                                let mut m = gs.mul(&win);
                                m.scale_in_place(amp * inv2v);
                                m
                            }
                            None => Tensor::zeros(u_temp.shape()),
                        };
                        if let Some(gst) = g_state[i].take() {
                            // Reset path threshold gradient: dU(t)/dV^th = −s.
                            let dvth_reset: f32 = u_temp
                                .data()
                                .iter()
                                .zip(gst.data())
                                .filter(|(&u, _)| u > v)
                                .map(|(_, &g)| -g)
                                .sum();
                            layer.v_th.grad.data_mut()[0] += dvth_reset;
                            g_u.add_assign(&gst);
                        }
                        // Spike-height threshold gradient via the surrogate:
                        // dS/dV^th ≈ −amp·win/(2v).
                        if let Some(gs) = &g_spike_out {
                            let dvth: f32 = gs
                                .data()
                                .iter()
                                .zip(win.data())
                                .map(|(&g, &w)| -g * w * amp * inv2v)
                                .sum();
                            layer.v_th.grad.data_mut()[0] += dvth;
                        }
                        // Leak gradient: dU_temp/dλ = U(t−1).
                        let dlam: f32 = g_u
                            .data()
                            .iter()
                            .zip(u_prev.data())
                            .map(|(&g, &u)| g * u)
                            .sum();
                        layer.leak.grad.data_mut()[0] += dlam;
                        // Into the input current of this step.
                        accumulate(&mut g_node[inputs[0]], g_u.clone());
                        // Across time: dU_temp/dU(t−1) = λ.
                        if t > 0 {
                            g_u.scale_in_place(lam);
                            g_state[i] = Some(g_u);
                        }
                    }
                    SnnOp::MaxPool2d { .. } => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let argmax = match &tape.aux[t][i] {
                            StepAux::MaxPool { argmax } => argmax,
                            _ => panic!("tape entry ({t},{i}) missing argmax"),
                        };
                        let shape = tape.acts[t][inputs[0]].shape().to_vec();
                        accumulate(
                            &mut g_node[inputs[0]],
                            maxpool2d_backward(&g, argmax, &shape),
                        );
                    }
                    SnnOp::AvgPool2d { k } => {
                        let k = *k;
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let shape = tape.acts[t][inputs[0]].shape().to_vec();
                        accumulate(&mut g_node[inputs[0]], avgpool2d_backward(&g, &shape, k));
                    }
                    SnnOp::Dropout { .. } => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let dx = match &tape.masks[i] {
                            Some(mask) => g.mul(mask),
                            None => g,
                        };
                        accumulate(&mut g_node[inputs[0]], dx);
                    }
                    SnnOp::Flatten => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        let shape = tape.acts[t][inputs[0]].shape().to_vec();
                        accumulate(
                            &mut g_node[inputs[0]],
                            g.reshape(&shape).expect("flatten backward"),
                        );
                    }
                    SnnOp::Add => {
                        let g = g_spike_out.expect("non-spike nodes only carry direct grads");
                        accumulate(&mut g_node[inputs[0]], g.clone());
                        accumulate(&mut g_node[inputs[1]], g);
                    }
                }
            }
        }
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        Some(acc) => acc.add_assign(&g),
        None => *slot = Some(g),
    }
}

/// SGD with momentum for SNNs, with stability clamps on the neuron
/// parameters after each step (`V^th ≥ 0.01`, `λ ∈ [0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct SnnSgd {
    /// Optimizer hyper-parameters (shared struct with the DNN trainer).
    pub config: SgdConfig,
    /// Optional global gradient-norm clip — BPTT through many spike layers
    /// benefits from the same stabiliser as deep batch-norm-free DNNs.
    pub max_grad_norm: Option<f32>,
}

impl SnnSgd {
    /// Creates an optimizer with the given configuration (no clipping).
    pub fn new(config: SgdConfig) -> Self {
        SnnSgd {
            config,
            max_grad_norm: None,
        }
    }

    /// Enables global gradient-norm clipping at `max_norm`.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// One update step at learning-rate factor `lr_factor`; gradients are
    /// left in place (call [`SnnNetwork::zero_grad`] afterwards).
    pub fn step(&self, net: &mut SnnNetwork, lr_factor: f32) {
        let lr = self.config.lr * lr_factor;
        let cfg = self.config;
        if let Some(max) = self.max_grad_norm {
            clip_snn_grads(net, max);
        }
        net.visit_params_mut(|p| update_param(p, lr, cfg));
        // Clamp neuron parameters to their physical ranges.
        for node in net.nodes_mut() {
            if let SnnOp::Spike(layer) = &mut node.op {
                let v = layer.v_th.value.data_mut();
                v[0] = v[0].max(0.01);
                let l = layer.leak.value.data_mut();
                l[0] = l[0].clamp(0.0, 1.0);
            }
        }
    }
}

/// Scales every gradient of `net` so the global L2 norm is at most `max`.
pub fn clip_snn_grads(net: &mut SnnNetwork, max: f32) {
    let mut total = 0.0f32;
    net.visit_params(|p| total += p.grad.norm_sq());
    let norm = total.sqrt();
    if norm > max && norm > 0.0 {
        let scale = max / norm;
        net.visit_params_mut(|p| p.grad.scale_in_place(scale));
    }
}

fn update_param(p: &mut Param, lr: f32, cfg: SgdConfig) {
    let wd = if p.decay { cfg.weight_decay } else { 0.0 };
    let n = p.value.len();
    let vals = p.value.data().to_vec();
    let grads = p.grad.data().to_vec();
    let mom = p.momentum.data_mut();
    for i in 0..n {
        mom[i] = cfg.momentum * mom[i] + grads[i] + wd * vals[i];
    }
    let mom_copy = mom.to_vec();
    let vd = p.value.data_mut();
    for i in 0..n {
        vd[i] -= lr * mom_copy[i];
    }
}

/// Configuration of SNN fine-tuning (SGL).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnTrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of simulation time steps T.
    pub time_steps: usize,
    /// Augmentation padding (0 disables).
    pub augment_pad: usize,
    /// Random horizontal flips.
    pub augment_flip: bool,
}

impl Default for SnnTrainConfig {
    fn default() -> Self {
        SnnTrainConfig {
            batch_size: 32,
            time_steps: 2,
            augment_pad: 2,
            augment_flip: true,
        }
    }
}

/// Statistics of one SGL epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnEpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub accuracy: f32,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak BPTT tape bytes observed (per batch).
    pub tape_bytes: usize,
}

/// One epoch of surrogate-gradient fine-tuning (paper §III-B: joint
/// training of weights, thresholds and leak after conversion).
pub fn train_snn_epoch(
    net: &mut SnnNetwork,
    train: &Dataset,
    sgd: &SnnSgd,
    lr_factor: f32,
    cfg: &SnnTrainConfig,
    rng: &mut StdRng,
) -> SnnEpochStats {
    let _span = ull_obs::span("snn.train_epoch");
    let start = std::time::Instant::now();
    let augment = Augment {
        pad: cfg.augment_pad,
        flip: cfg.augment_flip,
    };
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut tape_bytes = 0usize;
    for mut batch in train.epoch_batches(cfg.batch_size, rng) {
        ull_obs::counter_add("snn.train.batches", 1);
        augment.apply(&mut batch.images, rng);
        let tape = net.forward_train(&batch.images, cfg.time_steps, rng);
        tape_bytes = tape_bytes.max(tape.memory_bytes());
        let loss = cross_entropy_loss(&tape.logits, &batch.labels);
        let grad = cross_entropy_grad(&tape.logits, &batch.labels);
        for (pred, &label) in tape.logits.argmax_rows().iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
        total_loss += loss as f64 * batch.labels.len() as f64;
        seen += batch.labels.len();
        net.zero_grad();
        net.backward(&tape, &grad);
        sgd.step(net, lr_factor);
    }
    SnnEpochStats {
        loss: (total_loss / seen.max(1) as f64) as f32,
        accuracy: correct as f32 / seen.max(1) as f32,
        seconds: start.elapsed().as_secs_f64(),
        tape_bytes,
    }
}

/// Like [`train_snn_epoch`], but validates the loss and every gradient
/// before each optimizer step and aborts the epoch with a typed
/// [`TrainError`](ull_nn::TrainError) on the first NaN/Inf, leaving
/// parameter *values* untouched by the bad step. Consumes the RNG
/// identically to [`train_snn_epoch`] on the healthy path, so the two are
/// interchangeable in deterministic pipelines.
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`](ull_nn::TrainError::NonFiniteLoss) or
/// [`TrainError::NonFiniteGrad`](ull_nn::TrainError::NonFiniteGrad) at the
/// first numerically broken batch.
pub fn train_snn_epoch_checked(
    net: &mut SnnNetwork,
    train: &Dataset,
    sgd: &SnnSgd,
    lr_factor: f32,
    cfg: &SnnTrainConfig,
    rng: &mut StdRng,
) -> Result<SnnEpochStats, TrainError> {
    train_snn_epoch_with_hook(net, train, sgd, lr_factor, cfg, rng, &mut |_, _| {})
}

/// [`train_snn_epoch_checked`] with a per-batch instrumentation hook,
/// called after the BPTT backward pass and *before* the finite checks and
/// the optimizer step with `(net, batch_index)`. This is the seam the
/// deterministic fault-injection harness (`ull-core`'s `FaultPlan`) uses
/// to poison a gradient tensor at an exact, reproducible point; production
/// callers want [`train_snn_epoch_checked`].
///
/// # Errors
///
/// Same as [`train_snn_epoch_checked`].
#[allow(clippy::too_many_arguments)]
pub fn train_snn_epoch_with_hook(
    net: &mut SnnNetwork,
    train: &Dataset,
    sgd: &SnnSgd,
    lr_factor: f32,
    cfg: &SnnTrainConfig,
    rng: &mut StdRng,
    hook: &mut dyn FnMut(&mut SnnNetwork, usize),
) -> Result<SnnEpochStats, TrainError> {
    let _span = ull_obs::span("snn.train_epoch");
    let start = std::time::Instant::now();
    let augment = Augment {
        pad: cfg.augment_pad,
        flip: cfg.augment_flip,
    };
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut tape_bytes = 0usize;
    for (b, mut batch) in train.epoch_batches(cfg.batch_size, rng).enumerate() {
        ull_obs::counter_add("snn.train.batches", 1);
        augment.apply(&mut batch.images, rng);
        let tape = net.forward_train(&batch.images, cfg.time_steps, rng);
        tape_bytes = tape_bytes.max(tape.memory_bytes());
        let loss = cross_entropy_loss(&tape.logits, &batch.labels);
        if !loss.is_finite() {
            return Err(TrainError::NonFiniteLoss { batch: b, loss });
        }
        let grad = cross_entropy_grad(&tape.logits, &batch.labels);
        for (pred, &label) in tape.logits.argmax_rows().iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
        total_loss += loss as f64 * batch.labels.len() as f64;
        seen += batch.labels.len();
        net.zero_grad();
        net.backward(&tape, &grad);
        hook(net, b);
        check_snn_grads_finite(net, b)?;
        sgd.step(net, lr_factor);
    }
    Ok(SnnEpochStats {
        loss: (total_loss / seen.max(1) as f64) as f32,
        accuracy: correct as f32 / seen.max(1) as f32,
        seconds: start.elapsed().as_secs_f64(),
        tape_bytes,
    })
}

fn check_snn_grads_finite(net: &SnnNetwork, batch: usize) -> Result<(), TrainError> {
    let mut bad: Option<(usize, usize)> = None;
    let mut idx = 0usize;
    net.visit_params(|p| {
        if bad.is_none() && !p.grad.all_finite() {
            bad = Some((idx, p.grad.count_nonfinite()));
        }
        idx += 1;
    });
    match bad {
        Some((param, bad_elems)) => Err(TrainError::NonFiniteGrad {
            batch,
            param,
            bad_elems,
        }),
        None => Ok(()),
    }
}

/// Top-1 accuracy (and merged spike statistics) of `net` on `data` with `t`
/// time steps.
pub fn evaluate_snn(
    net: &SnnNetwork,
    data: &Dataset,
    t: usize,
    batch_size: usize,
) -> (f32, SpikeStats) {
    let _span = ull_obs::span("snn.evaluate");
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut merged: Option<SpikeStats> = None;
    for batch in data.eval_batches(batch_size) {
        let out = net.forward(&batch.images, t);
        for (pred, &label) in out.logits.argmax_rows().iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
        seen += batch.labels.len();
        match &mut merged {
            Some(m) => m.merge(&out.stats),
            None => merged = Some(out.stats),
        }
    }
    let stats = merged.unwrap_or_else(|| SpikeStats::new(net.nodes().len(), 0, t));
    (correct as f32 / seen.max(1) as f32, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SpikeSpec;
    use ull_data::{generate, SynthCifarConfig};
    use ull_nn::{models, NetworkBuilder};
    use ull_tensor::init::{normal, seeded_rng};

    fn make_snn(seed: u64) -> SnnNetwork {
        let mut b = NetworkBuilder::new(2, 4, seed);
        b.conv2d(4, 3, 1, 1);
        b.threshold_relu(1.0);
        b.maxpool(2);
        b.flatten();
        b.linear(3);
        let dnn = b.build();
        SnnNetwork::from_network(&dnn, &[SpikeSpec::identity(1.0)]).unwrap()
    }

    #[test]
    fn backward_produces_finite_grads_everywhere() {
        let mut snn = make_snn(1);
        let x = normal(&[2, 2, 4, 4], 0.0, 1.5, &mut seeded_rng(2));
        let tape = snn.forward_train(&x, 3, &mut seeded_rng(3));
        let grad = cross_entropy_grad(&tape.logits, &[0, 1]);
        snn.backward(&tape, &grad);
        let mut nonzero = 0;
        snn.visit_params(|p| {
            assert!(p.grad.data().iter().all(|g| g.is_finite()));
            if p.grad.data().iter().any(|&g| g != 0.0) {
                nonzero += 1;
            }
        });
        assert!(nonzero >= 3, "only {nonzero} params received gradient");
    }

    #[test]
    fn output_layer_gradient_is_exact() {
        // The path logits → final Linear is differentiable (no spike in
        // between), so finite differences must match exactly there.
        let snn = make_snn(4);
        let x = normal(&[1, 2, 4, 4], 0.0, 1.5, &mut seeded_rng(5));
        let labels = [2usize];

        let loss_of = |net: &SnnNetwork| {
            let out = net.forward(&x, 3);
            cross_entropy_loss(&out.logits, &labels)
        };

        let mut snn2 = snn.clone();
        let tape = snn2.forward_train(&x, 3, &mut seeded_rng(0));
        let grad = cross_entropy_grad(&tape.logits, &labels);
        snn2.backward(&tape, &grad);
        // Find the linear node and check a few weight coordinates.
        let lin_id = snn
            .nodes()
            .iter()
            .position(|n| matches!(n.op, SnnOp::Linear { .. }))
            .unwrap();
        let wg = match &snn2.nodes()[lin_id].op {
            SnnOp::Linear { weight, .. } => weight.grad.clone(),
            _ => unreachable!(),
        };
        let eps = 1e-2;
        for &i in &[0usize, 3, 7, 11] {
            let mut np = snn.clone();
            if let SnnOp::Linear { weight, .. } = &mut np.nodes_mut()[lin_id].op {
                weight.value.data_mut()[i] += eps;
            }
            let mut nm = snn.clone();
            if let SnnOp::Linear { weight, .. } = &mut nm.nodes_mut()[lin_id].op {
                weight.value.data_mut()[i] -= eps;
            }
            let fd = (loss_of(&np) - loss_of(&nm)) / (2.0 * eps);
            assert!(
                (fd - wg.data()[i]).abs() < 1e-3,
                "i={i}: fd {fd} vs analytic {}",
                wg.data()[i]
            );
        }
    }

    #[test]
    fn sgl_training_improves_accuracy() {
        // End-to-end sanity: SGL on a tiny SynthCifar should beat chance.
        let cfg = SynthCifarConfig::tiny(3);
        let (train_data, test_data) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.5, 7);
        let specs = vec![SpikeSpec::identity(2.0); dnn.threshold_nodes().len()];
        let mut snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
        let sgd = SnnSgd::new(SgdConfig {
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let tcfg = SnnTrainConfig {
            batch_size: 16,
            time_steps: 2,
            augment_pad: 0,
            augment_flip: false,
        };
        let mut rng = seeded_rng(8);
        let (acc_before, _) = evaluate_snn(&snn, &test_data, 2, 16);
        let mut last = 0.0;
        for _ in 0..6 {
            let s = train_snn_epoch(&mut snn, &train_data, &sgd, 1.0, &tcfg, &mut rng);
            last = s.accuracy;
        }
        let (acc_after, _) = evaluate_snn(&snn, &test_data, 2, 16);
        assert!(
            acc_after > acc_before.max(0.34),
            "SGL failed: before {acc_before}, after {acc_after}, train {last}"
        );
    }

    #[test]
    fn clamps_keep_neuron_params_physical() {
        let mut snn = make_snn(9);
        // Adversarial gradient pushing v_th negative and leak above 1.
        for node in snn.nodes_mut() {
            if let SnnOp::Spike(layer) = &mut node.op {
                layer.v_th.grad.data_mut()[0] = 1000.0;
                layer.leak.grad.data_mut()[0] = -1000.0;
            }
        }
        let sgd = SnnSgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        sgd.step(&mut snn, 1.0);
        for node in snn.nodes() {
            if let SnnOp::Spike(layer) = &node.op {
                assert!(layer.v_th.scalar_value() >= 0.01);
                assert!(layer.leak.scalar_value() <= 1.0);
            }
        }
    }

    #[test]
    fn clip_snn_grads_bounds_global_norm() {
        let mut snn = make_snn(20);
        snn.visit_params_mut(|p| p.grad.fill(10.0));
        clip_snn_grads(&mut snn, 2.0);
        let mut total = 0.0f32;
        snn.visit_params(|p| total += p.grad.norm_sq());
        assert!((total.sqrt() - 2.0).abs() < 1e-3, "norm {}", total.sqrt());
    }

    #[test]
    fn sgd_with_clip_is_stable_under_huge_grads() {
        let mut snn = make_snn(21);
        snn.visit_params_mut(|p| p.grad.fill(1e6));
        let sgd = SnnSgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        })
        .with_clip(1.0);
        sgd.step(&mut snn, 1.0);
        snn.visit_params(|p| {
            assert!(p
                .value
                .data()
                .iter()
                .all(|v| v.is_finite() && v.abs() < 10.0));
        });
    }

    #[test]
    fn evaluate_merges_stats_across_batches() {
        let cfg = SynthCifarConfig::tiny(3);
        let (_, test_data) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 11);
        let specs = vec![SpikeSpec::identity(1.0); dnn.threshold_nodes().len()];
        let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
        let (_, stats) = evaluate_snn(&snn, &test_data, 2, 8);
        assert_eq!(stats.batch(), test_data.len());
    }

    #[test]
    fn checked_snn_epoch_matches_unchecked_bit_for_bit() {
        let cfg = SynthCifarConfig::tiny(3);
        let (train_data, _) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.5, 7);
        let specs = vec![SpikeSpec::identity(2.0); dnn.threshold_nodes().len()];
        let snn0 = SnnNetwork::from_network(&dnn, &specs).unwrap();
        let sgd = SnnSgd::new(SgdConfig::default());
        let tcfg = SnnTrainConfig {
            batch_size: 16,
            time_steps: 2,
            augment_pad: 2,
            augment_flip: true,
        };

        let mut a = snn0.clone();
        let mut rng_a = seeded_rng(40);
        let sa = train_snn_epoch(&mut a, &train_data, &sgd, 1.0, &tcfg, &mut rng_a);

        let mut b = snn0.clone();
        let mut rng_b = seeded_rng(40);
        let sb = train_snn_epoch_checked(&mut b, &train_data, &sgd, 1.0, &tcfg, &mut rng_b)
            .expect("healthy epoch must not error");

        assert_eq!(sa.loss.to_bits(), sb.loss.to_bits());
        assert_eq!(sa.accuracy.to_bits(), sb.accuracy.to_bits());
        assert_eq!(rng_a.state(), rng_b.state(), "RNG consumption diverged");
        let mut va = Vec::new();
        let mut vb = Vec::new();
        a.visit_params(|p| va.extend(p.value.data().iter().map(|x| x.to_bits())));
        b.visit_params(|p| vb.extend(p.value.data().iter().map(|x| x.to_bits())));
        assert_eq!(va, vb, "parameters diverged between checked/unchecked");
    }

    #[test]
    fn checked_snn_epoch_detects_injected_nan_gradient() {
        let cfg = SynthCifarConfig::tiny(3);
        let (train_data, _) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.5, 7);
        let specs = vec![SpikeSpec::identity(2.0); dnn.threshold_nodes().len()];
        let mut snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
        let before: Vec<u32> = {
            let mut v = Vec::new();
            snn.visit_params(|p| v.extend(p.value.data().iter().map(|x| x.to_bits())));
            v
        };
        let sgd = SnnSgd::new(SgdConfig::default());
        let tcfg = SnnTrainConfig::default();
        let mut rng = seeded_rng(41);
        let err = train_snn_epoch_with_hook(
            &mut snn,
            &train_data,
            &sgd,
            1.0,
            &tcfg,
            &mut rng,
            &mut |net, b| {
                if b == 0 {
                    net.visit_params_mut(|p| p.grad.data_mut()[0] = f32::NAN);
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::NonFiniteGrad { batch: 0, .. }));
        // The poisoned step never ran: parameter values are untouched.
        let mut after = Vec::new();
        snn.visit_params(|p| after.extend(p.value.data().iter().map(|x| x.to_bits())));
        assert_eq!(before, after, "NaN gradient leaked into parameters");
    }

    #[test]
    fn leak_gradient_sign_matches_effect() {
        // With a positive membrane and a loss that rewards more spiking on
        // the true class, check the leak gradient is finite and the
        // training step changes the leak.
        let mut snn = make_snn(12);
        let x = normal(&[2, 2, 4, 4], 0.5, 1.0, &mut seeded_rng(13));
        let tape = snn.forward_train(&x, 3, &mut seeded_rng(0));
        let grad = cross_entropy_grad(&tape.logits, &[0, 1]);
        snn.backward(&tape, &grad);
        for node in snn.nodes() {
            if let SnnOp::Spike(layer) = &node.op {
                assert!(layer.leak.grad.data()[0].is_finite());
                assert!(layer.v_th.grad.data()[0].is_finite());
            }
        }
    }
}
