//! Equivalence suite for the event-driven sparse inference engine: for
//! any network topology, batch split, thread count and dispatch cutoff,
//! `SnnNetwork::forward` must produce logits and spike statistics that
//! are bit-identical to the dense-forced run — the sparse kernels are a
//! pure work optimisation, never a numerical one. Fault injection via
//! `forward_tampered` is included so the dispatcher's mid-run fallback
//! (a tampered, non-uniform spike tensor must route dense) is covered.

use proptest::prelude::*;
use ull_nn::{NetworkBuilder, NodeId};
use ull_snn::{dispatch, set_sparse_cutoff, SnnNetwork, SpikeSpec, StepTamper};
use ull_tensor::init::{mix64, normal, seeded_rng};
use ull_tensor::{parallel, Tensor};

/// Conv → spike → strided+padded biased conv → spike → maxpool →
/// dropout → flatten → linear. Covers both weighted kernels on both
/// analog-fed (dense-only) and spike-fed (sparse-capable) inputs.
fn conv_chain(seed: u64) -> SnnNetwork {
    let mut b = NetworkBuilder::new(2, 8, seed);
    b.conv2d(4, 3, 1, 1);
    b.threshold_relu(0.7);
    b.conv2d_opts(5, 3, 2, 1, true);
    b.threshold_relu(0.9);
    b.maxpool(2);
    b.dropout(0.4);
    b.flatten();
    b.linear(5);
    let dnn = b.build();
    SnnNetwork::from_network(
        &dnn,
        &[SpikeSpec::scaled(0.7, 0.8, 1.2), SpikeSpec::identity(0.9)],
    )
    .unwrap()
}

/// Residual topology: the Add of two equal-amplitude spike trains emits
/// values in {0, amp, 2·amp} — non-uniform, so everything downstream of
/// the join must fall back to the dense kernels; avgpool's fractional
/// outputs keep it that way. The trunk conv before the join still gets
/// uniform spikes and can route sparse.
fn residual_net(seed: u64) -> SnnNetwork {
    let mut b = NetworkBuilder::new(2, 8, seed);
    b.conv2d(4, 3, 1, 1);
    let trunk = b.threshold_relu(0.6);
    b.conv2d(4, 3, 1, 1);
    let branch = b.cursor();
    b.add(trunk, branch, (4, 8, 8));
    b.threshold_relu(0.5);
    b.avgpool(2);
    b.flatten();
    b.linear(5);
    let dnn = b.build();
    SnnNetwork::from_network(&dnn, &[SpikeSpec::identity(0.6), SpikeSpec::identity(0.5)]).unwrap()
}

fn nets(seed: u64) -> Vec<(&'static str, SnnNetwork)> {
    vec![
        ("conv_chain", conv_chain(seed)),
        ("residual", residual_net(seed)),
    ]
}

/// Cutoffs exercised against the dense-forced baseline: sparse wherever
/// possible, the default crossover, and a near-zero cutoff that only
/// rarely fires.
const CUTOFFS: [f32; 3] = [2.0, ull_snn::DEFAULT_SPARSE_CUTOFF, 0.05];

/// Flips spikes on and off from a hash of the *global* coordinates
/// (step, node, sample, element), so the same fault pattern lands
/// regardless of how the batch is chunked across threads. Writes only
/// `0.0` or `amp`, preserving amplitude uniformity.
struct HashTamper {
    seed: u64,
    rate_256: u64,
}

impl StepTamper for HashTamper {
    fn tamper_spikes(
        &self,
        step: usize,
        node: NodeId,
        batch_offset: usize,
        amp: f32,
        out: &mut Tensor,
    ) {
        let per_sample: usize = out.shape()[1..].iter().product();
        for (j, v) in out.data_mut().iter_mut().enumerate() {
            let sample = batch_offset + j / per_sample;
            let elem = j % per_sample;
            let h = mix64(
                self.seed,
                &[step as u64, node as u64, sample as u64, elem as u64],
            );
            if (h & 0xff) < self.rate_256 {
                *v = if *v == 0.0 { amp } else { 0.0 };
            }
        }
    }
}

/// Injects a single fractional-amplitude value into sample 0 at step 0,
/// making that layer's output non-uniform for exactly one step. The
/// consumer must fall back to the dense kernel when it sees it and may
/// resume sparse routing once the train is uniform again.
struct NonUniformTamper;

impl StepTamper for NonUniformTamper {
    fn tamper_spikes(
        &self,
        step: usize,
        _node: NodeId,
        batch_offset: usize,
        amp: f32,
        out: &mut Tensor,
    ) {
        if step == 0 && batch_offset == 0 {
            out.data_mut()[0] = 0.37 * amp;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn event_forward_matches_dense_for_any_cutoff_and_threads(
        seed in 0u64..1000,
        batch in 1usize..6,
        t_steps in 1usize..5,
    ) {
        let x = normal(&[batch, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(seed ^ 0x5a5a));
        let _threads = parallel::override_lock();
        let _cutoff = dispatch::cutoff_lock();
        for (name, snn) in nets(seed) {
            parallel::set_threads(1);
            set_sparse_cutoff(Some(-1.0));
            let dense = snn.forward(&x, t_steps);
            for threads in [1usize, 4] {
                parallel::set_threads(threads);
                for cutoff in CUTOFFS {
                    set_sparse_cutoff(Some(cutoff));
                    let sparse = snn.forward(&x, t_steps);
                    prop_assert_eq!(
                        &sparse.logits, &dense.logits,
                        "{}: cutoff {} threads {}", name, cutoff, threads
                    );
                    prop_assert_eq!(
                        &sparse.stats, &dense.stats,
                        "{}: cutoff {} threads {}", name, cutoff, threads
                    );
                }
            }
        }
        set_sparse_cutoff(None);
        parallel::set_threads(0);
    }

    #[test]
    fn tampered_event_forward_matches_dense(
        seed in 0u64..1000,
        batch in 1usize..6,
        t_steps in 1usize..5,
        rate_256 in 0u64..96,
    ) {
        let x = normal(&[batch, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(seed ^ 0xbeef));
        let plan = HashTamper { seed: seed ^ 0xfa17, rate_256 };
        let _threads = parallel::override_lock();
        let _cutoff = dispatch::cutoff_lock();
        for (name, snn) in nets(seed) {
            parallel::set_threads(1);
            set_sparse_cutoff(Some(-1.0));
            let dense = snn.forward_tampered(&x, t_steps, &plan);
            for threads in [1usize, 4] {
                parallel::set_threads(threads);
                for cutoff in CUTOFFS {
                    set_sparse_cutoff(Some(cutoff));
                    let sparse = snn.forward_tampered(&x, t_steps, &plan);
                    prop_assert_eq!(
                        &sparse.logits, &dense.logits,
                        "{}: cutoff {} threads {}", name, cutoff, threads
                    );
                    prop_assert_eq!(
                        &sparse.stats, &dense.stats,
                        "{}: cutoff {} threads {}", name, cutoff, threads
                    );
                }
            }
        }
        set_sparse_cutoff(None);
        parallel::set_threads(0);
    }
}

#[test]
fn non_uniform_tamper_falls_back_and_recovers() {
    let x = normal(&[3, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(7));
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    for (name, snn) in nets(7) {
        parallel::set_threads(1);
        set_sparse_cutoff(Some(-1.0));
        let dense = snn.forward_tampered(&x, 4, &NonUniformTamper);
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            set_sparse_cutoff(Some(2.0));
            let sparse = snn.forward_tampered(&x, 4, &NonUniformTamper);
            assert_eq!(
                sparse.logits, dense.logits,
                "{name}: threads {threads} diverged after non-uniform tamper"
            );
            assert_eq!(sparse.stats, dense.stats, "{name}: threads {threads}");
        }
    }
    set_sparse_cutoff(None);
    parallel::set_threads(0);
}

#[test]
fn dispatch_decisions_are_published_as_obs_counters() {
    let snn = conv_chain(11);
    let x = normal(&[2, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(11));
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    let _obs = ull_obs::test_lock();
    parallel::set_threads(1);

    ull_obs::reset();
    ull_obs::set_enabled(true);
    set_sparse_cutoff(Some(2.0));
    snn.forward(&x, 4);
    let snap = ull_obs::snapshot();
    let sparse_hits = snap.counter_prefix_sum("snn.dispatch.sparse.node");
    let dense_hits = snap.counter_prefix_sum("snn.dispatch.dense.node");
    assert!(
        sparse_hits > 0,
        "sparse-forced run never took the event path"
    );
    // Step 1 always routes dense (nothing measured yet), and the analog
    // first conv stays dense at every step.
    assert!(dense_hits > 0, "first step and analog layers must be dense");

    ull_obs::reset();
    set_sparse_cutoff(Some(-1.0));
    snn.forward(&x, 4);
    let snap = ull_obs::snapshot();
    assert_eq!(
        snap.counter_prefix_sum("snn.dispatch.sparse.node"),
        0,
        "dense-forced run must never dispatch sparse"
    );
    assert!(snap.counter_prefix_sum("snn.dispatch.dense.node") > 0);

    ull_obs::set_enabled(false);
    ull_obs::reset();
    set_sparse_cutoff(None);
    parallel::set_threads(0);
}
