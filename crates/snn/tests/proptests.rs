//! Property-based tests for the spiking simulator, centred on the
//! determinism contract of the batch-parallel forward pass: for any
//! network, batch size, step count and thread count, the chunked
//! simulation must reproduce the serial run bit for bit.

use proptest::prelude::*;
use ull_nn::NetworkBuilder;
use ull_snn::{SnnNetwork, SpikeSpec};
use ull_tensor::init::{normal, seeded_rng};
use ull_tensor::parallel;

fn tiny_snn(seed: u64) -> SnnNetwork {
    let mut b = NetworkBuilder::new(2, 4, seed);
    b.conv2d(3, 3, 1, 1);
    b.threshold_relu(0.8);
    b.maxpool(2);
    b.flatten();
    b.linear(4);
    let dnn = b.build();
    SnnNetwork::from_network(&dnn, &[SpikeSpec::scaled(0.8, 0.7, 1.1)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snn_forward_is_thread_count_invariant(
        seed in 0u64..1000,
        batch in 1usize..7,
        t_steps in 1usize..5,
    ) {
        let snn = tiny_snn(seed);
        let x = normal(&[batch, 2, 4, 4], 0.0, 1.0, &mut seeded_rng(seed ^ 0x5eed));
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        let base = snn.forward(&x, t_steps);
        for threads in [2, 3, 4] {
            parallel::set_threads(threads);
            let out = snn.forward(&x, t_steps);
            // Exact equality: batch chunking must not change any sample's
            // temporal dynamics or the integer spike counters.
            prop_assert_eq!(&out.logits, &base.logits, "threads {}", threads);
            prop_assert_eq!(
                out.stats.spikes_per_node(),
                base.stats.spikes_per_node(),
                "threads {}", threads
            );
            prop_assert_eq!(out.stats.batch(), base.stats.batch());
        }
        parallel::set_threads(0);
    }

    #[test]
    fn snn_forward_logits_are_step_averages(
        seed in 0u64..1000,
        t_steps in 1usize..5,
    ) {
        // Logits are means of per-step output activations, so scaling the
        // step count cannot push them outside the per-step extremes seen
        // by a longer run of the same network — a cheap sanity bound that
        // holds for every (seed, T).
        let snn = tiny_snn(seed);
        let x = normal(&[2, 2, 4, 4], 0.0, 1.0, &mut seeded_rng(seed ^ 0xfeed));
        let out = snn.forward(&x, t_steps);
        prop_assert_eq!(out.logits.shape(), &[2, 4]);
        prop_assert!(out.logits.data().iter().all(|v| v.is_finite()));
        prop_assert_eq!(out.stats.steps(), t_steps);
    }
}
