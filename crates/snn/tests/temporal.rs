//! Integration tests of temporal SNN semantics that span modules:
//! encoding × dynamics × statistics.

use ull_nn::{NetworkBuilder, NodeOp};
use ull_snn::{evaluate_snn, memory_profile, InputEncoding, SnnNetwork, SpikeSpec};
use ull_tensor::init::{normal, seeded_rng};
use ull_tensor::Tensor;

fn single_neuron(weight: f32, v_th: f32, leak: f32) -> SnnNetwork {
    let mut b = NetworkBuilder::new(1, 1, 0);
    b.flatten();
    b.linear(1);
    b.threshold_relu(v_th);
    let mut dnn = b.build();
    if let NodeOp::Linear { weight: w, .. } = &mut dnn.nodes_mut()[2].op {
        w.value.fill(weight);
    }
    let spec = SpikeSpec {
        v_th,
        amp: v_th,
        leak,
        u_init: 0.0,
    };
    SnnNetwork::from_network(&dnn, &[spec]).unwrap()
}

#[test]
fn if_firing_rate_matches_eq5_over_a_current_sweep() {
    // For constant input current s, total spikes over T steps must equal
    // clip(floor(s·T/V), 0, T) — Eq. 5 against the real simulator.
    let v_th = 1.0;
    let t = 8;
    for i in 0..40 {
        let s = 0.03 + i as f32 * 0.05;
        let pos = s * t as f32 / v_th;
        if (pos - pos.round()).abs() < 1e-3 {
            continue; // skip boundary floats
        }
        let snn = single_neuron(s, v_th, 1.0);
        let x = Tensor::ones(&[1, 1, 1, 1]);
        let out = snn.forward(&x, t);
        let node = snn.spike_nodes()[0];
        let expected = (pos.floor() as u64).min(t as u64);
        assert_eq!(
            out.stats.spikes_per_node()[node],
            expected,
            "current {s}: expected {expected} spikes"
        );
    }
}

#[test]
fn strong_leak_forgets_subthreshold_input() {
    // λ = 0 resets the membrane every step, so a current below V^th never
    // accumulates into a spike, no matter how long we run.
    let snn = single_neuron(0.9, 1.0, 0.0);
    let x = Tensor::ones(&[1, 1, 1, 1]);
    let out = snn.forward(&x, 64);
    let node = snn.spike_nodes()[0];
    assert_eq!(out.stats.spikes_per_node()[node], 0);
    // While the IF neuron (λ = 1) spikes plenty.
    let snn_if = single_neuron(0.9, 1.0, 1.0);
    let out_if = snn_if.forward(&x, 64);
    assert!(out_if.stats.spikes_per_node()[node] > 50);
}

#[test]
fn suprathreshold_current_fires_every_step_regardless_of_leak() {
    for leak in [0.0f32, 0.5, 1.0] {
        let snn = single_neuron(1.5, 1.0, leak);
        let x = Tensor::ones(&[1, 1, 1, 1]);
        let t = 16;
        let out = snn.forward(&x, t);
        let node = snn.spike_nodes()[0];
        assert_eq!(
            out.stats.spikes_per_node()[node],
            t as u64,
            "leak {leak}: should fire every step"
        );
    }
}

#[test]
fn rate_encoded_input_drives_first_layer_with_binary_values() {
    // Under rate coding the conv layer consumes only {0, 1} inputs — the
    // accumulate-only property the encoding trades latency for.
    let mut b = NetworkBuilder::new(2, 4, 3);
    b.conv2d(3, 3, 1, 1);
    b.threshold_relu(1.0);
    b.flatten();
    b.linear(2);
    let dnn = b.build();
    let snn = SnnNetwork::from_network(&dnn, &[SpikeSpec::identity(1.0)]).unwrap();
    let mut rng = seeded_rng(9);
    let x = normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
    let enc = InputEncoding::PoissonRate { max_rate: 0.7 };
    let xt = enc.encode_step(&x, &mut rng);
    assert!(xt.data().iter().all(|&v| v == 0.0 || v == 1.0));
    // And the full encoded forward still produces finite logits.
    let out = snn.forward_with_encoding(&x, 4, enc, &mut rng);
    assert!(out.logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn evaluation_and_profile_compose_on_a_batch_dataset() {
    use ull_data::{generate, SynthCifarConfig};
    let cfg = SynthCifarConfig::tiny(3);
    let (_, test) = generate(&cfg);
    let dnn = ull_nn::models::vgg_micro(3, cfg.image_size, 0.25, 8);
    let specs = vec![SpikeSpec::identity(1.5); dnn.threshold_nodes().len()];
    let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
    let (acc, stats) = evaluate_snn(&snn, &test, 2, 8);
    assert!((0.0..=1.0).contains(&acc));
    assert_eq!(stats.batch(), test.len());
    let prof = memory_profile(&snn, &[3, cfg.image_size, cfg.image_size]);
    // Membrane state must cover every spiking neuron reported by stats.
    let spiking_neurons: usize = snn
        .spike_nodes()
        .iter()
        .map(|&id| stats.neurons_per_node()[id])
        .sum();
    assert_eq!(prof.spiking_neurons, spiking_neurons);
}
