//! Proves the steady-state step loop of the event-driven forward pass is
//! allocation-free: once the `StepWorkspace` buffers have grown to their
//! working sizes (and every layer's dispatch route has been exercised),
//! additional time steps must not touch the allocator.
//!
//! The check compares total allocator hits for a short run against a
//! longer run of the same network and input: per-step routing decisions
//! are deterministic per step index, so every allocation the long run
//! performs beyond the short run would have to come from the extra steady
//! steps — the assertion is that there are none.
//!
//! This lives in an integration test because the library crates
//! `forbid(unsafe_code)` and a counting `#[global_allocator]` needs an
//! `unsafe impl`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ull_nn::NetworkBuilder;
use ull_snn::{dispatch, set_sparse_cutoff, SnnNetwork, SpikeSpec};
use ull_tensor::init::{normal, seeded_rng};
use ull_tensor::parallel;

static ALLOC_HITS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn test_net(seed: u64) -> SnnNetwork {
    let mut b = NetworkBuilder::new(2, 8, seed);
    b.conv2d(4, 3, 1, 1);
    b.threshold_relu(0.7);
    b.conv2d(5, 3, 1, 1);
    b.threshold_relu(0.9);
    b.maxpool(2);
    b.flatten();
    b.linear(5);
    let dnn = b.build();
    SnnNetwork::from_network(&dnn, &[SpikeSpec::identity(0.7), SpikeSpec::identity(0.9)]).unwrap()
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_HITS.load(Ordering::Relaxed);
    f();
    ALLOC_HITS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_step_loop_does_not_allocate() {
    let snn = test_net(42);
    let x = normal(&[3, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(99));
    // Single thread (inline execution, no pool hand-off buffers) and a
    // fixed sparse-everywhere cutoff so both kernel families are hit.
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    parallel::set_threads(1);

    for cutoff in [2.0f32, -1.0] {
        set_sparse_cutoff(Some(cutoff));
        // Warm up lazily initialised process state (thread-count cache,
        // cutoff cell, allocator internals).
        snn.forward(&x, 1);

        // By the end of step 2 every buffer has reached its working size:
        // step 1 routes dense everywhere (first-step rule) and grows the
        // dense scratch; step 2 flips the uniform low-activity layers to
        // the event path and grows the event buffers. Steps 3+ must be
        // allocation-free, so T=8 may not out-allocate T=2.
        let short = allocs_during(|| {
            snn.forward(&x, 2);
        });
        let long = allocs_during(|| {
            snn.forward(&x, 8);
        });
        assert!(
            long <= short,
            "steady-state steps allocated: T=2 cost {short} hits, T=8 cost {long} (cutoff {cutoff})"
        );
    }

    set_sparse_cutoff(None);
    parallel::set_threads(0);
}
