//! Proves the steady-state step loop of the event-driven forward pass is
//! allocation-free: once the `StepWorkspace` buffers have grown to their
//! working sizes (and every layer's dispatch route has been exercised),
//! additional time steps must not touch the allocator.
//!
//! The check compares total allocator hits for a short run against a
//! longer run of the same network and input: per-step routing decisions
//! are deterministic per step index, so every allocation the long run
//! performs beyond the short run would have to come from the extra steady
//! steps — the assertion is that there are none.
//!
//! This lives in an integration test because the library crates
//! `forbid(unsafe_code)` and a counting `#[global_allocator]` needs an
//! `unsafe impl`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ull_nn::NetworkBuilder;
use ull_snn::packing::clear_pack_cache;
use ull_snn::{dispatch, set_sparse_cutoff, SnnNetwork, SnnOp, SpikeSpec, StepTamper};
use ull_tensor::init::{normal, seeded_rng};
use ull_tensor::{parallel, set_packed, Tensor};

static ALLOC_HITS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_HITS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn test_net(seed: u64) -> SnnNetwork {
    let mut b = NetworkBuilder::new(2, 8, seed);
    b.conv2d(4, 3, 1, 1);
    b.threshold_relu(0.7);
    b.conv2d(5, 3, 1, 1);
    b.threshold_relu(0.9);
    b.maxpool(2);
    b.flatten();
    b.linear(5);
    let dnn = b.build();
    SnnNetwork::from_network(&dnn, &[SpikeSpec::identity(0.7), SpikeSpec::identity(0.9)]).unwrap()
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_HITS.load(Ordering::Relaxed);
    f();
    ALLOC_HITS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_step_loop_does_not_allocate() {
    let snn = test_net(42);
    let x = normal(&[3, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(99));
    // Single thread (inline execution, no pool hand-off buffers) and a
    // fixed sparse-everywhere cutoff so both kernel families are hit.
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    parallel::set_threads(1);

    for cutoff in [2.0f32, -1.0] {
        set_sparse_cutoff(Some(cutoff));
        // Warm up lazily initialised process state (thread-count cache,
        // cutoff cell, allocator internals).
        snn.forward(&x, 1);

        // By the end of step 2 every buffer has reached its working size:
        // step 1 routes dense everywhere (first-step rule) and grows the
        // dense scratch; step 2 flips the uniform low-activity layers to
        // the event path and grows the event buffers. Steps 3+ must be
        // allocation-free, so T=8 may not out-allocate T=2.
        let short = allocs_during(|| {
            snn.forward(&x, 2);
        });
        let long = allocs_during(|| {
            snn.forward(&x, 8);
        });
        assert!(
            long <= short,
            "steady-state steps allocated: T=2 cost {short} hits, T=8 cost {long} (cutoff {cutoff})"
        );
    }

    set_sparse_cutoff(None);
    parallel::set_threads(0);
}

/// Packed weights are built exactly once per network: after the first
/// forward, extra timesteps, batches and whole forward calls hit the pack
/// cache and allocate nothing new.
#[test]
fn packed_weights_build_once_and_steady_state_stays_alloc_free() {
    let snn = test_net(7);
    let x = normal(&[3, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(17));
    let x_small = normal(&[1, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(18));
    // override_lock also serializes against the other alloc tests here,
    // which must not see the pack cache cleared mid-measurement.
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    let _packed = ull_tensor::packed::packed_lock();
    let _obs = ull_obs::test_lock();
    parallel::set_threads(1);
    // Force the dense route everywhere so every step exercises the packed
    // kernels.
    set_sparse_cutoff(Some(-1.0));
    set_packed(Some(true));
    clear_pack_cache();

    ull_obs::reset();
    ull_obs::set_enabled(true);
    snn.forward(&x, 1); // builds the pack, grows workspace buffers
    snn.forward(&x, 8); // extra timesteps: same pack
    snn.forward(&x_small, 2); // different batch shape: same pack
    ull_obs::set_enabled(false);
    let snap = ull_obs::snapshot();
    assert_eq!(
        snap.counters.get("snn.pack.builds"),
        Some(&1),
        "pack must be built exactly once across forwards, timesteps and batches"
    );
    assert!(
        snap.counters.get("snn.pack.hits").is_some_and(|&h| h >= 2),
        "subsequent forwards must hit the cached pack: {:?}",
        snap.counters.get("snn.pack.hits")
    );

    // With the pack warm (and obs off — its records allocate), extra
    // steady-state steps must not touch the allocator.
    let short = allocs_during(|| {
        snn.forward(&x, 2);
    });
    let long = allocs_during(|| {
        snn.forward(&x, 8);
    });
    assert!(
        long <= short,
        "packed steady-state steps allocated: T=2 cost {short} hits, T=8 cost {long}"
    );

    ull_obs::reset();
    set_packed(None);
    set_sparse_cutoff(None);
    parallel::set_threads(0);
    clear_pack_cache();
}

struct NoopTamper;

impl StepTamper for NoopTamper {
    fn tamper_spikes(&self, _: usize, _: ull_nn::NodeId, _: usize, _: f32, _: &mut Tensor) {}
}

/// Stale-pack guard: weights mutated between (tampered) forwards change
/// the network fingerprint, so the next forward re-packs instead of using
/// the stale layout — and stays bit-identical to the unpacked path.
#[test]
fn tampered_weight_mutation_triggers_repack() {
    let mut snn = test_net(11);
    let x = normal(&[2, 2, 8, 8], 0.0, 1.0, &mut seeded_rng(23));
    let _threads = parallel::override_lock();
    let _cutoff = dispatch::cutoff_lock();
    let _packed = ull_tensor::packed::packed_lock();
    let _obs = ull_obs::test_lock();
    parallel::set_threads(1);
    set_sparse_cutoff(Some(-1.0));
    set_packed(Some(true));
    clear_pack_cache();

    ull_obs::reset();
    ull_obs::set_enabled(true);
    snn.forward_tampered(&x, 3, &NoopTamper);
    // Simulate an in-place weight fault between inference calls.
    for node in snn.nodes_mut() {
        if let SnnOp::Conv2d { weight, .. } = &mut node.op {
            weight.value.data_mut()[0] += 0.25;
        }
    }
    let packed_out = snn.forward_tampered(&x, 3, &NoopTamper);
    ull_obs::set_enabled(false);
    let snap = ull_obs::snapshot();
    assert_eq!(
        snap.counters.get("snn.pack.builds"),
        Some(&2),
        "mutated weights must miss the pack cache and re-pack"
    );

    // The re-packed result must match the unpacked path on the mutated
    // weights bit for bit — a stale pack would reproduce the old weights.
    set_packed(Some(false));
    let unpacked_out = snn.forward_tampered(&x, 3, &NoopTamper);
    assert_eq!(packed_out.logits.shape(), unpacked_out.logits.shape());
    for (p, u) in packed_out
        .logits
        .data()
        .iter()
        .zip(unpacked_out.logits.data())
    {
        assert_eq!(p.to_bits(), u.to_bits(), "{p} vs {u}");
    }

    ull_obs::reset();
    set_packed(None);
    set_sparse_cutoff(None);
    parallel::set_threads(0);
    clear_pack_cache();
}
