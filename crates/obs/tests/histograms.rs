//! Property tests for histogram determinism: merged per-thread snapshots
//! must be bit-identical regardless of thread count (the `ULL_THREADS`
//! {1,4} contract) or merge order, and recording with the gate off must
//! leave the registry untouched.

use proptest::prelude::*;
use ull_obs::{histogram_record, HistogramSnapshot};

/// Splits `values` into `threads` round-robin shards, records each shard
/// in its own [`HistogramSnapshot`] on its own OS thread, and merges the
/// per-thread snapshots in shard order.
fn record_sharded(values: &[u64], threads: usize) -> HistogramSnapshot {
    let shards: Vec<Vec<u64>> = (0..threads)
        .map(|t| {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == t)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect();
    let parts: Vec<HistogramSnapshot> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                s.spawn(move || {
                    let mut h = HistogramSnapshot::new();
                    for &v in shard {
                        h.record(v);
                    }
                    h
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = HistogramSnapshot::new();
    for p in &parts {
        merged.merge(p);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same multiset of values recorded on 1 thread or sharded across
    /// 4 threads merges to bit-identical snapshots (and identical JSON).
    #[test]
    fn merged_snapshots_identical_across_thread_counts(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
    ) {
        let one = record_sharded(&values, 1);
        let four = record_sharded(&values, 4);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&four).unwrap()
        );
    }

    /// Merge is order-invariant: forward and reverse folds of per-shard
    /// snapshots agree bit-for-bit, and quantiles answer identically.
    #[test]
    fn merge_order_does_not_change_the_snapshot(
        values in proptest::collection::vec(0u64..u64::MAX, 1..300),
        shards in 2usize..6,
    ) {
        let parts: Vec<HistogramSnapshot> = (0..shards)
            .map(|t| {
                let mut h = HistogramSnapshot::new();
                for (i, &v) in values.iter().enumerate() {
                    if i % shards == t {
                        h.record(v);
                    }
                }
                h
            })
            .collect();
        let mut fwd = HistogramSnapshot::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = HistogramSnapshot::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &rev);
        for &p in &[0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(fwd.quantile(p), rev.quantile(p));
        }
    }

    /// Quantiles never underestimate the exact sorted rank value and stay
    /// within one log₂ bucket (< 2×) above it.
    #[test]
    fn quantile_brackets_the_exact_value(
        raw in proptest::collection::vec(0u64..10_000_000, 1..500),
        p in 0.01f64..1.0,
    ) {
        let mut h = HistogramSnapshot::new();
        for &v in &raw {
            h.record(v);
        }
        let mut values = raw;
        values.sort_unstable();
        let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = h.quantile(p);
        prop_assert!(est >= exact);
        prop_assert!(est <= exact.saturating_mul(2).max(1));
    }

    /// With the gate off, `histogram_record` leaves the process registry
    /// untouched — no keys appear, counts stay zero.
    #[test]
    fn gate_off_leaves_registry_untouched(
        values in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let _lock = ull_obs::test_lock();
        ull_obs::reset();
        ull_obs::set_enabled(false);
        for &v in &values {
            histogram_record("gated.off", v);
        }
        let snap = ull_obs::snapshot();
        prop_assert!(snap.histograms.is_empty());
        prop_assert!(snap.is_empty());
    }
}
