//! Observability for the DNN→SNN pipeline: tracing spans, run metrics and
//! per-layer profiling — dependency-free (std + the vendored serde shims).
//!
//! Three facilities share one process-wide registry:
//!
//! * **Spans** — nestable RAII timers ([`span`]) with monotonic-clock
//!   durations, aggregated per *path* (the `/`-joined chain of enclosing
//!   span labels, e.g. `pipeline.sgl/snn.forward_train/tensor.conv2d`).
//!   Worker threads of `ull_tensor::parallel` inherit the spawning
//!   thread's path via [`current_path`]/[`with_parent_path`], so kernel
//!   time spent on the pool rolls up under the parent span.
//! * **Counters and gauges** — monotonically accumulating event counts
//!   ([`counter_add`]: spikes, MACs, checkpoint bytes, α/β candidates…)
//!   and last-write-wins values ([`gauge_set`]: neurons per layer).
//! * **Histograms** — fixed-size log₂-bucketed value distributions
//!   ([`histogram_record`]: request latencies, per-rung step counts) with
//!   exact count/sum/min/max, commutative merges and deterministic
//!   quantiles ([`HistogramSnapshot::quantile`] always answers with a
//!   bucket upper bound, so reruns agree bit-for-bit).
//! * **Sinks** — an in-memory [`MetricsSnapshot`] (serde-serializable;
//!   `ull-core` merges it into `PipelineReport` and the `reports/*.json`
//!   artifacts) plus an optional JSONL event stream ([`TraceEvent`] per
//!   line) activated by `ULL_TRACE=<path>`.
//!
//! # The disabled fast path
//!
//! Instrumentation is **off by default**. Every entry point first performs
//! exactly one relaxed atomic load and returns immediately when disabled —
//! no clock reads, no allocation, no locks — so instrumented hot paths stay
//! within the ≤2% overhead budget asserted by `ull-bench`'s `obs_overhead`
//! binary. Binaries opt in with [`init_from_env`] (honouring `ULL_TRACE`
//! and `ULL_METRICS=1`) or programmatically with [`set_enabled`].
//!
//! Instrumentation never alters numerics: enabled or not, all kernels and
//! training loops produce bit-identical outputs.
//!
//! # Example
//!
//! ```
//! let _lock = ull_obs::test_lock();
//! ull_obs::reset();
//! ull_obs::set_enabled(true);
//! {
//!     let _outer = ull_obs::span("epoch");
//!     let _inner = ull_obs::span("matmul");
//!     ull_obs::counter_add("macs", 1024);
//! }
//! let snap = ull_obs::snapshot();
//! assert_eq!(snap.spans["epoch/matmul"].count, 1);
//! assert_eq!(snap.counters["macs"], 1024);
//! ull_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Enable flag — the one atomic every disabled call site pays.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is currently collecting. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide. Turning it off does not clear
/// aggregates (see [`reset`]) or close an open trace (see [`close_trace`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Initialises from the environment: `ULL_TRACE=<path>` opens the JSONL
/// event stream at `<path>` and enables collection; otherwise
/// `ULL_METRICS=1` enables in-memory aggregation only. Returns whether
/// collection ended up enabled. Call once from binaries; libraries never
/// self-enable.
pub fn init_from_env() -> bool {
    if let Some(path) = std::env::var_os("ULL_TRACE") {
        if let Err(e) = open_trace(&path) {
            eprintln!("ULL_TRACE: cannot open {path:?}: {e}");
        }
        set_enabled(true);
        return true;
    }
    if std::env::var("ULL_METRICS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        set_enabled(true);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Aggregate of all completed spans sharing one path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Completed spans on this path.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

struct Registry {
    epoch: Instant,
    spans: Mutex<HashMap<String, SpanStat>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, u64>>,
    hists: Mutex<HashMap<String, HistogramSnapshot>>,
    trace: Mutex<Option<BufWriter<File>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        epoch: Instant::now(),
        spans: Mutex::new(HashMap::new()),
        counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        trace: Mutex::new(None),
    })
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Small per-thread ordinal for trace events (`ThreadId` has no stable
/// numeric accessor). Assigned on first use, in first-use order.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    ORDINAL.with(|c| {
        let v = c.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// The `/`-joined labels of the spans currently open on this thread.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII span timer returned by [`span`]. Dropping it stops the clock and
/// folds the duration into the per-path aggregate (and the trace, if one
/// is open). Inert — a single `None` — when collection is disabled.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    label: &'static str,
    /// Byte length of the thread path *before* this span pushed its label,
    /// restored on drop.
    prev_len: usize,
    start: Instant,
}

/// Opens a span named `label` lasting until the guard drops. Nested spans
/// aggregate under the `/`-joined path of their enclosing labels.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let prev_len = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(label);
        prev
    });
    SpanGuard(Some(ActiveSpan {
        label,
        prev_len,
        start: Instant::now(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur = active.start.elapsed();
        let path = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let full = p.clone();
            p.truncate(active.prev_len);
            full
        });
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let reg = registry();
        {
            let mut spans = lock(&reg.spans);
            let stat = spans.entry(path.clone()).or_default();
            stat.count += 1;
            stat.total_ns += dur_ns;
            stat.max_ns = stat.max_ns.max(dur_ns);
        }
        let start_us = active
            .start
            .duration_since(reg.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        write_trace(&TraceEvent::Span {
            path,
            label: active.label.to_string(),
            thread: thread_ordinal(),
            start_us,
            dur_us: dur_ns / 1_000,
        });
    }
}

/// The current thread's open-span path (empty when none, or when
/// collection is disabled). Pool entry points capture this once before
/// spawning so workers can adopt it with [`with_parent_path`].
pub fn current_path() -> String {
    if !enabled() {
        return String::new();
    }
    PATH.with(|p| p.borrow().clone())
}

/// Runs `f` with the thread's span path set to `parent` (as captured by
/// [`current_path`] on the spawning thread), restoring the previous path
/// afterwards. With an empty `parent` this is exactly `f()`.
pub fn with_parent_path<R>(parent: &str, f: impl FnOnce() -> R) -> R {
    if parent.is_empty() {
        return f();
    }
    let saved = PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), parent.to_string()));
    let r = f();
    PATH.with(|p| *p.borrow_mut() = saved);
    r
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Adds `delta` to the counter `key`. Counters only ever accumulate;
/// [`reset`] zeroes them.
#[inline]
pub fn counter_add(key: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    *lock(&registry().counters)
        .entry(key.to_string())
        .or_insert(0) += delta;
    write_trace(&TraceEvent::Counter {
        key: key.to_string(),
        delta,
        thread: thread_ordinal(),
    });
}

/// Adds `delta` to the indexed counter `key.index` (e.g. per-node spike
/// counters `snn.spikes.node.7`). The key string is only built when
/// collection is enabled.
#[inline]
pub fn counter_add_indexed(key: &str, index: usize, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    counter_add(&format!("{key}.{index}"), delta);
}

/// Sets the gauge `key` to `value` (last write wins).
#[inline]
pub fn gauge_set(key: &str, value: u64) {
    if !enabled() {
        return;
    }
    lock(&registry().gauges).insert(key.to_string(), value);
    write_trace(&TraceEvent::Gauge {
        key: key.to_string(),
        value,
    });
}

/// Sets the indexed gauge `key.index` to `value`.
#[inline]
pub fn gauge_set_indexed(key: &str, index: usize, value: u64) {
    if !enabled() {
        return;
    }
    gauge_set(&format!("{key}.{index}"), value);
}

/// Emits a point-in-time marker into the trace (phase boundaries,
/// recovery events). No in-memory aggregate.
#[inline]
pub fn mark(label: &str) {
    if !enabled() {
        return;
    }
    let reg = registry();
    let at_us = reg.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
    write_trace(&TraceEvent::Mark {
        label: label.to_string(),
        at_us,
    });
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log₂ buckets in a [`HistogramSnapshot`]: bucket 0 holds exact
/// zeros, bucket `i ∈ 1..=64` holds values in `[2^(i-1), 2^i - 1]`. The top
/// bucket's range saturates at `u64::MAX`, so there is no separate overflow
/// bucket — every `u64` lands somewhere.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for `value`: 0 for 0, else `64 - value.leading_zeros()`
/// (the position of the highest set bit, 1-based).
#[inline]
pub fn hist_bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index`: 0 for bucket 0, else
/// `2^index - 1` (saturating at `u64::MAX` for the top bucket).
#[inline]
pub fn hist_bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A log₂-bucketed value distribution with exact count/sum/min/max.
///
/// Merging is elementwise addition, so merged per-thread snapshots are
/// independent of merge order, and [`quantile`](Self::quantile) is a pure
/// function of the bucket counts — deterministic across reruns and thread
/// counts whenever the recorded multiset of values is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total values recorded.
    pub count: u64,
    /// Exact sum of all recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty histogram with all [`HIST_BUCKETS`] buckets zeroed.
    pub fn new() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Folds one value into the distribution.
    pub fn record(&mut self, value: u64) {
        if self.buckets.len() != HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[hist_bucket_index(value)] += 1;
    }

    /// Adds `other`'s contents into `self`. Commutative and associative:
    /// any merge order of per-thread snapshots yields identical bytes.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() != HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (i, &b) in other.buckets.iter().enumerate().take(HIST_BUCKETS) {
            self.buckets[i] += b;
        }
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Deterministic quantile estimate: finds the bucket holding the
    /// value of rank `ceil(p · count)` and returns that bucket's upper
    /// bound, clamped to the exact observed `max`. Because bucket `i`
    /// spans `[2^(i-1), 2^i - 1]`, the answer never underestimates the
    /// true quantile and overestimates by less than 2× (one log₂
    /// bucket's relative error). Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return hist_bucket_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Folds `value` into the histogram `key`. One relaxed load and return
/// when collection is disabled; the registry is untouched.
#[inline]
pub fn histogram_record(key: &str, value: u64) {
    if !enabled() {
        return;
    }
    lock(&registry().hists)
        .entry(key.to_string())
        .or_default()
        .record(value);
    write_trace(&TraceEvent::Hist {
        key: key.to_string(),
        value,
        thread: thread_ordinal(),
    });
}

// ---------------------------------------------------------------------------
// Trace sink (JSONL)
// ---------------------------------------------------------------------------

/// One line of the `ULL_TRACE` JSONL stream, externally tagged like
/// serde_json: `{"Span":{...}}`, `{"Counter":{...}}`, …
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A completed span.
    Span {
        /// Full `/`-joined path, including this span's label.
        path: String,
        /// This span's own label (the path's last segment).
        label: String,
        /// Thread ordinal (first-use order, 0 = usually main).
        thread: u64,
        /// Start, microseconds since the process trace epoch.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A counter increment.
    Counter {
        /// Counter key.
        key: String,
        /// Amount added.
        delta: u64,
        /// Thread ordinal.
        thread: u64,
    },
    /// A gauge update.
    Gauge {
        /// Gauge key.
        key: String,
        /// New value.
        value: u64,
    },
    /// A point-in-time marker.
    Mark {
        /// Marker label.
        label: String,
        /// Microseconds since the process trace epoch.
        at_us: u64,
    },
    /// A histogram observation.
    Hist {
        /// Histogram key.
        key: String,
        /// Recorded value.
        value: u64,
        /// Thread ordinal.
        thread: u64,
    },
}

fn write_trace(event: &TraceEvent) {
    let reg = registry();
    let mut guard = lock(&reg.trace);
    if let Some(w) = guard.as_mut() {
        let line = serde_json::to_string(event).expect("TraceEvent serializes infallibly");
        let _ = writeln!(w, "{line}");
    }
}

/// Opens (or replaces) the JSONL trace sink at `path`. Does not by itself
/// enable collection — callers normally go through [`init_from_env`].
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be created.
pub fn open_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = File::create(path)?;
    *lock(&registry().trace) = Some(BufWriter::new(f));
    Ok(())
}

/// Flushes buffered trace lines to disk (no-op without an open trace).
pub fn flush_trace() {
    if let Some(w) = lock(&registry().trace).as_mut() {
        let _ = w.flush();
    }
}

/// Flushes and closes the trace sink (no-op without an open trace).
pub fn close_trace() {
    if let Some(mut w) = lock(&registry().trace).take() {
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time copy of every aggregate, with deterministic (sorted)
/// key order so serialized snapshots are directly diffable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-path span aggregates.
    #[serde(default)]
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
    /// Histogram distributions.
    #[serde(default)]
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Sum of `prefix`-keyed counters (e.g. all `snn.spikes.node.*`).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }
}

/// Copies the current aggregates into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        spans: lock(&reg.spans)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        counters: lock(&reg.counters)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        gauges: lock(&reg.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: lock(&reg.hists)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
    }
}

/// Clears every span, counter, gauge and histogram aggregate (the enable
/// flag and the trace sink are untouched). Call between phases for
/// per-phase snapshots.
pub fn reset() {
    let reg = registry();
    lock(&reg.spans).clear();
    lock(&reg.counters).clear();
    lock(&reg.gauges).clear();
    lock(&reg.hists).clear();
}

/// Serializes tests that mutate the process-wide registry or enable flag,
/// so parallel test threads cannot race each other. Poison-proof.
#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ull-obs-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn disabled_calls_record_nothing() {
        let _lock = test_lock();
        reset();
        set_enabled(false);
        {
            let _g = span("never");
            counter_add("never", 7);
            gauge_set("never", 9);
            histogram_record("never", 11);
        }
        assert!(snapshot().is_empty());
        assert_eq!(current_path(), "");
    }

    #[test]
    fn spans_nest_into_paths_and_aggregate() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _solo = span("outer");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.spans["outer"].count, 4);
        assert_eq!(snap.spans["outer/inner"].count, 3);
        assert!(snap.spans["outer"].total_ns >= snap.spans["outer"].max_ns);
        // The path stack fully unwound.
        assert_eq!(PATH.with(|p| p.borrow().len()), 0);
    }

    #[test]
    fn worker_threads_inherit_the_parent_path() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("parent");
            let parent = current_path();
            assert_eq!(parent, "parent");
            std::thread::scope(|s| {
                s.spawn(|| {
                    with_parent_path(&parent, || {
                        let _k = span("kernel");
                    });
                    // The worker's own path is restored afterwards.
                    assert_eq!(PATH.with(|p| p.borrow().clone()), "");
                });
            });
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.spans["parent/kernel"].count, 1);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        counter_add("macs", 10);
        counter_add("macs", 5);
        counter_add_indexed("spikes.node", 3, 2);
        counter_add_indexed("spikes.node", 3, 4);
        counter_add("zero", 0); // no-op by contract
        gauge_set("neurons", 100);
        gauge_set("neurons", 200);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counters["macs"], 15);
        assert_eq!(snap.counters["spikes.node.3"], 6);
        assert!(!snap.counters.contains_key("zero"));
        assert_eq!(snap.gauges["neurons"], 200);
        assert_eq!(snap.counter_prefix_sum("spikes.node."), 6);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        {
            let _g = span("a");
            counter_add("c", 3);
            gauge_set("g", 4);
        }
        set_enabled(false);
        let snap = snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn trace_file_holds_parseable_events() {
        let _lock = test_lock();
        reset();
        let path = temp_trace("events");
        open_trace(&path).unwrap();
        set_enabled(true);
        {
            let _g = span("traced");
            counter_add("c", 1);
            gauge_set("g", 2);
            mark("phase");
            histogram_record("h", 42);
        }
        set_enabled(false);
        close_trace();
        let body = std::fs::read_to_string(&path).unwrap();
        let events: Vec<TraceEvent> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line parses"))
            .collect();
        std::fs::remove_file(&path).ok();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Span { path, .. } if path == "traced")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { key, delta: 1, .. } if key == "c")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Gauge { key, value: 2 } if key == "g")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Mark { label, .. } if label == "phase")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Hist { key, value: 42, .. } if key == "h")));
    }

    #[test]
    fn reset_clears_aggregates_but_not_the_flag() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        counter_add("c", 1);
        reset();
        assert!(snapshot().is_empty());
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn hist_bucket_math_covers_the_u64_range() {
        assert_eq!(hist_bucket_index(0), 0);
        assert_eq!(hist_bucket_index(1), 1);
        assert_eq!(hist_bucket_index(2), 2);
        assert_eq!(hist_bucket_index(3), 2);
        assert_eq!(hist_bucket_index(4), 3);
        assert_eq!(hist_bucket_index(u64::MAX), 64);
        assert_eq!(hist_bucket_bound(0), 0);
        assert_eq!(hist_bucket_bound(1), 1);
        assert_eq!(hist_bucket_bound(2), 3);
        assert_eq!(hist_bucket_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let i = hist_bucket_index(v);
            assert!(i < HIST_BUCKETS);
            assert!(v <= hist_bucket_bound(i));
            if i > 0 {
                assert!(v > hist_bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn histograms_record_exact_aggregates() {
        let _lock = test_lock();
        reset();
        set_enabled(true);
        for v in [0u64, 1, 5, 5, 100, 7] {
            histogram_record("lat", v);
        }
        set_enabled(false);
        let snap = snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 118);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 19);
        assert_eq!(h.buckets.iter().sum::<u64>(), 6);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[3], 3); // 5, 5, 7 in [4,7]
    }

    #[test]
    fn quantile_matches_exact_sorted_within_one_bucket() {
        // Satellite check: quantile(0.99) vs the exact sorted p99 — the
        // histogram answer must bracket the true value within one log₂
        // bucket (never below it, less than 2× above it).
        let mut h = HistogramSnapshot::new();
        let mut values: Vec<u64> = Vec::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // Deterministic LCG spread over a few decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 1_000_000;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for &p in &[0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(p);
            assert!(est >= exact, "p{p}: est {est} < exact {exact}");
            assert!(
                est <= exact.saturating_mul(2).max(1),
                "p{p}: est {est} > 2x exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge_is_order_invariant() {
        let mut parts: Vec<HistogramSnapshot> = Vec::new();
        for t in 0..4u64 {
            let mut h = HistogramSnapshot::new();
            for i in 0..100u64 {
                h.record(t * 1000 + i * 7);
            }
            parts.push(h);
        }
        let mut fwd = HistogramSnapshot::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = HistogramSnapshot::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap()
        );
        // And merging equals recording everything into one histogram.
        let mut all = HistogramSnapshot::new();
        for t in 0..4u64 {
            for i in 0..100u64 {
                all.record(t * 1000 + i * 7);
            }
        }
        assert_eq!(fwd, all);
    }

    #[test]
    fn histogram_snapshot_round_trips_through_json() {
        let mut h = HistogramSnapshot::new();
        for v in [3u64, 9, 27, 81] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        assert!(HistogramSnapshot::new().is_empty());
        assert_eq!(HistogramSnapshot::new().quantile(0.99), 0);
    }

    #[test]
    fn trace_event_round_trips() {
        let e = TraceEvent::Span {
            path: "a/b".into(),
            label: "b".into(),
            thread: 1,
            start_us: 10,
            dur_us: 5,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
