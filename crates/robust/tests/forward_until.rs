//! `SnnNetwork::forward_until` under faulted replicas: the anytime
//! callback contract (monotone step indices, frozen rows stay frozen)
//! must survive static weight corruption, and results must be invariant
//! to `ULL_THREADS` — the serving layer's degradation ladder leans on
//! both properties when it early-exits on a quarantine-bound replica.

use ull_data::{generate, SynthCifarConfig};
use ull_nn::models;
use ull_robust::{anytime_forward, AnytimeConfig, FaultConfig, FaultedNetwork, InferenceFault};
use ull_snn::{SnnNetwork, SpikeSpec};
use ull_tensor::{parallel, Tensor};

fn faulted_replica(seed: u64, ber: f64) -> SnnNetwork {
    let dnn = models::vgg_micro(3, 8, 0.25, 17);
    let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
    let clean = SnnNetwork::from_network(&dnn, &specs).unwrap();
    let cfg = FaultConfig::new(seed).with(InferenceFault::WeightBitFlip { ber });
    FaultedNetwork::new(&clean, &cfg).network().clone()
}

fn test_images(batch: usize) -> Tensor {
    let (_, test) = generate(&SynthCifarConfig::tiny(3));
    test.eval_batches(batch).next().expect("test data").images
}

#[test]
fn callback_sees_monotone_step_indices_on_faulted_replicas() {
    let x = test_images(8);
    for seed in [1u64, 9, 23] {
        let net = faulted_replica(seed, 1e-3);
        let mut seen = Vec::new();
        let (_, steps) = net.forward_until(&x, 5, |t, mean| {
            assert_eq!(mean.shape(), &[8, 3], "callback logits keep batch shape");
            seen.push(t);
            true
        });
        assert_eq!(steps, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5], "seed {seed}: steps not monotone");
    }
}

#[test]
fn early_stop_reports_steps_actually_run() {
    let net = faulted_replica(3, 1e-3);
    let x = test_images(4);
    let mut seen = Vec::new();
    let (out, steps) = net.forward_until(&x, 5, |t, _| {
        seen.push(t);
        t < 2
    });
    assert_eq!(steps, 2);
    assert_eq!(seen, vec![1, 2]);
    assert!(out.logits.all_finite());
}

#[test]
fn frozen_rows_never_unfreeze_on_faulted_replicas() {
    let x = test_images(16);
    for seed in [2u64, 11] {
        let net = faulted_replica(seed, 1e-3);
        let cfg = AnytimeConfig::new(5, 0.02);
        let out = anytime_forward(&net, &x, &cfg);

        // Reconstruct the per-step running argmaxes and check each row's
        // reported prediction equals the argmax at its freeze step — not
        // whatever later steps (simulated for other rows) said.
        let mut per_step_argmax: Vec<Vec<usize>> = Vec::new();
        net.forward_until(&x, out.steps_simulated, |_, mean| {
            per_step_argmax.push(mean.argmax_rows());
            true
        });
        for (r, (&steps_used, &pred)) in out.steps_used.iter().zip(&out.predictions).enumerate() {
            let freeze_step = steps_used.min(out.steps_simulated);
            assert_eq!(
                pred,
                per_step_argmax[freeze_step - 1][r],
                "seed {seed}: row {r} drifted after freezing at step {freeze_step}"
            );
        }
    }
}

#[test]
fn forward_until_and_anytime_are_thread_invariant_on_faulted_replicas() {
    let _guard = parallel::override_lock();
    let x = test_images(16);
    let net = faulted_replica(7, 1e-3);
    let cfg = AnytimeConfig::new(4, 0.05);

    parallel::set_threads(1);
    let (serial_out, serial_steps) = net.forward_until(&x, 4, |_, _| true);
    let serial_any = anytime_forward(&net, &x, &cfg);

    parallel::set_threads(4);
    let (par_out, par_steps) = net.forward_until(&x, 4, |_, _| true);
    let par_any = anytime_forward(&net, &x, &cfg);
    parallel::set_threads(0);

    assert_eq!(serial_steps, par_steps);
    assert_eq!(
        serial_out
            .logits
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        par_out
            .logits
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "faulted forward_until logits must be bit-identical across thread counts"
    );
    assert_eq!(serial_out.stats, par_out.stats);
    assert_eq!(serial_any, par_any);
}
