//! Regression: per-step margin schedules make early exit work on
//! *converted* α/β networks, where the single global margin of PR 4
//! documentedly idled (output spikes land only in the last steps, so the
//! global gate — dominated by last-step margins — never fires early).

use ull_core::{convert, ConversionMethod};
use ull_data::{generate, Dataset, SynthCifarConfig};
use ull_nn::models;
use ull_robust::{
    anytime_forward, anytime_forward_scheduled, calibrate_margin, calibrate_margin_schedule,
    AnytimeConfig,
};
use ull_snn::{evaluate_snn, SnnNetwork};

fn accuracy_and_mean_steps<F>(data: &Dataset, forward: F) -> (f32, f64)
where
    F: Fn(&ull_tensor::Tensor) -> ull_robust::AnytimeOutput,
{
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut steps = 0usize;
    for batch in data.eval_batches(16) {
        let out = forward(&batch.images);
        for (pred, &label) in out.predictions.iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
        steps += out.steps_used.iter().sum::<usize>();
        seen += batch.labels.len();
    }
    (correct as f32 / seen as f32, steps as f64 / seen as f64)
}

fn converted_net(t: usize) -> (SnnNetwork, Dataset, Dataset) {
    let cfg = SynthCifarConfig::tiny(3);
    let (train, test) = generate(&cfg);
    let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 29);
    let (snn, _) = convert(&dnn, &train, ConversionMethod::AlphaBeta, t).expect("conversion");
    (snn, train, test)
}

#[test]
fn schedule_fires_early_exits_on_converted_nets() {
    let t_max = 5;
    let (snn, train, test) = converted_net(t_max);
    let target = 0.95;

    // Calibrate both gates on train data, evaluate on test data.
    let global = calibrate_margin(&snn, &train, t_max, 16, target);
    let schedule = calibrate_margin_schedule(&snn, &train, t_max, 16, target);

    let (full_acc, _) = evaluate_snn(&snn, &test, t_max, 16);
    let cfg = AnytimeConfig::new(t_max, global);
    let (_, global_steps) = accuracy_and_mean_steps(&test, |x| anytime_forward(&snn, x, &cfg));
    let (sched_acc, sched_steps) =
        accuracy_and_mean_steps(&test, |x| anytime_forward_scheduled(&snn, x, &schedule));

    assert!(
        sched_steps < t_max as f64,
        "schedule saved no steps on the converted net (mean {sched_steps:.2} of {t_max})"
    );
    assert!(
        sched_steps <= global_steps + 1e-9,
        "schedule (mean {sched_steps:.2}) must not be slower than the global gate \
         (mean {global_steps:.2})"
    );
    assert!(
        sched_acc >= full_acc - 0.01 - f32::EPSILON,
        "scheduled accuracy {sched_acc:.4} lost more than 1 pt vs full-T {full_acc:.4}"
    );
}

#[test]
fn schedule_disables_silent_leading_steps_on_converted_nets() {
    // At T = 3 the converted net's output stays silent before the final
    // step (the documented PR-4 limitation). The schedule must encode
    // that as infinite gates rather than firing on degenerate margins.
    let t_max = 3;
    let (snn, train, test) = converted_net(t_max);
    let schedule = calibrate_margin_schedule(&snn, &train, t_max, 16, 0.95);
    let batch = test.eval_batches(32).next().expect("test data");
    let out = anytime_forward_scheduled(&snn, &batch.images, &schedule);
    let full = snn.forward(&batch.images, t_max);
    for (gate, t) in schedule.margins.iter().zip(1..) {
        if gate.is_infinite() {
            assert!(
                out.steps_used.iter().all(|&s| s != t),
                "no sample may exit at disabled step {t}"
            );
        }
    }
    // Samples that never exited early must reproduce the full-T answer.
    for (r, &steps) in out.steps_used.iter().enumerate() {
        if steps == t_max {
            assert_eq!(out.predictions[r], full.logits.argmax_rows()[r]);
        }
    }
}
