//! Thread-count invariance of the resilience machinery.
//!
//! Every fault decision is a pure function of coordinates, so faulted
//! inference, watchdog checks, anytime inference and whole sweep reports
//! must be bit-identical whether the tensor pool runs 1 or 4 workers —
//! the robustness analogue of the recovery suite's bit-identity tests.

use ull_data::{generate, Dataset, SynthCifarConfig};
use ull_nn::{models, Network};
use ull_robust::{
    anytime_forward, evaluate_faulted, resilience_sweep, AnytimeConfig, FaultConfig,
    FaultedNetwork, InferenceFault, SweepConfig,
};
use ull_snn::{SnnNetwork, SpikeSpec};
use ull_tensor::parallel;

fn setup() -> (Network, SnnNetwork, Dataset) {
    let cfg = SynthCifarConfig::tiny(3);
    let (_, test) = generate(&cfg);
    let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 19);
    let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
    let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
    (dnn, snn, test)
}

/// Runs `f` under 1 worker and under 4 workers and returns both results.
fn at_threads<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = parallel::override_lock();
    parallel::set_threads(1);
    let a = f();
    parallel::set_threads(4);
    let b = f();
    parallel::set_threads(0);
    (a, b)
}

#[test]
fn faulted_evaluation_is_thread_invariant() {
    let (_, snn, data) = setup();
    let cfg = FaultConfig::new(77)
        .with(InferenceFault::WeightBitFlip { ber: 1e-3 })
        .with(InferenceFault::SpikeDelete { rate: 0.2 })
        .with(InferenceFault::SpikeInsert { rate: 0.05 })
        .with(InferenceFault::InputNoise { sigma: 0.1 });
    let faulted = FaultedNetwork::new(&snn, &cfg);
    let (r1, r4) = at_threads(|| evaluate_faulted(&faulted, &data, 3, 16));
    assert_eq!(
        r1.0.to_bits(),
        r4.0.to_bits(),
        "accuracy differs by thread count"
    );
    assert_eq!(
        r1.1.spikes_per_node(),
        r4.1.spikes_per_node(),
        "spike counters differ by thread count"
    );
}

#[test]
fn sweep_report_is_thread_invariant() {
    let (dnn, snn, data) = setup();
    let cfg = SweepConfig::smoke(5);
    let (a, b) = at_threads(|| resilience_sweep(&dnn, &snn, &data, &cfg));
    assert_eq!(a, b, "sweep reports differ by thread count");
    // Serialized artifacts must match byte for byte too.
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn anytime_inference_is_thread_invariant() {
    let (_, snn, data) = setup();
    let batch = data.eval_batches(16).next().unwrap();
    let cfg = AnytimeConfig::new(4, 0.02);
    let (a, b) = at_threads(|| anytime_forward(&snn, &batch.images, &cfg));
    assert_eq!(a, b, "anytime decisions differ by thread count");
}
