//! Spike-rate watchdog: detect silent corruption from activity drift.
//!
//! Hardware faults in a deployed SNN rarely crash anything — a flipped
//! weight bit or a stuck neuron just skews the spike statistics. Because
//! the simulator already counts every spike ([`ull_snn::SpikeStats`]),
//! layer-wise activity is a free health signal: profile a per-layer
//! envelope of spike rates on clean evaluation batches, then flag any run
//! whose measured rates leave the envelope.
//!
//! The envelope is `[min − margin, max + margin]` per layer, where min/max
//! are taken over the profiled batches and the margin combines a relative
//! and an absolute slack. A run profiled on batches drawn from the same
//! distribution therefore never trips the watchdog (zero false positives
//! by construction plus slack), while high-BER corruption — which
//! collapses or saturates layer activity — lands far outside.

use serde::{Deserialize, Serialize};
use ull_data::Dataset;
use ull_snn::{ActivityReport, SnnNetwork};

/// Per-layer spike-rate bounds profiled from clean runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEnvelope {
    /// Minimum clean per-layer spike rate observed during profiling.
    pub min: Vec<f64>,
    /// Maximum clean per-layer spike rate observed during profiling.
    pub max: Vec<f64>,
    /// Relative slack applied to both bounds (fraction of the bound).
    pub rel_margin: f64,
    /// Absolute slack applied to both bounds (spikes per neuron per run).
    pub abs_margin: f64,
    /// Time steps of the profiled runs — a report from a different T is
    /// not comparable and is rejected by [`RateEnvelope::check`].
    pub steps: usize,
}

/// One layer whose measured rate left the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateViolation {
    /// Node id of the offending layer.
    pub node: usize,
    /// Measured spike rate.
    pub rate: f64,
    /// Lower envelope bound (margin applied).
    pub lo: f64,
    /// Upper envelope bound (margin applied).
    pub hi: f64,
}

impl RateEnvelope {
    /// Checks a measured activity report against the envelope, returning
    /// every violating layer (empty = healthy). Also publishes the
    /// violation count to the `robust.watchdog.violations` counter.
    ///
    /// # Panics
    ///
    /// Panics if the report's node count or step count differs from the
    /// profiled runs — that is a harness bug, not a hardware fault.
    pub fn check(&self, report: &ActivityReport) -> Vec<RateViolation> {
        assert_eq!(
            report.spike_rate.len(),
            self.min.len(),
            "report node count differs from profiled envelope"
        );
        assert_eq!(
            report.steps, self.steps,
            "report time steps differ from profiled envelope"
        );
        let mut violations = Vec::new();
        for (node, &rate) in report.spike_rate.iter().enumerate() {
            // Layers that never spike (non-spiking ops) profile as 0 on
            // both bounds; the absolute margin keeps them from flagging
            // float dust.
            let lo = self.min[node] * (1.0 - self.rel_margin) - self.abs_margin;
            let hi = self.max[node] * (1.0 + self.rel_margin) + self.abs_margin;
            if !(rate >= lo && rate <= hi) {
                violations.push(RateViolation { node, rate, lo, hi });
            }
        }
        ull_obs::counter_add("robust.watchdog.checks", 1);
        if !violations.is_empty() {
            ull_obs::counter_add("robust.watchdog.violations", violations.len() as u64);
        }
        violations
    }

    /// True if the report stays inside the envelope everywhere.
    pub fn is_healthy(&self, report: &ActivityReport) -> bool {
        self.check(report).is_empty()
    }
}

/// Profiles a clean activity envelope by running the network over the
/// evaluation batches of `data` (batch by batch, so the envelope captures
/// genuine batch-to-batch spread) with the given margins.
///
/// Margins trade detection power against false positives: the defaults
/// used by the resilience harness (`rel = 0.5`, `abs = 0.05`) keep clean
/// runs on held-out batches of the same distribution inside the envelope
/// (zero false positives across the harness's 20-run check) while still
/// flagging the order-of-magnitude activity shifts that bit-level weight
/// corruption causes.
///
/// # Panics
///
/// Panics if `data` has no evaluation batches.
pub fn profile_envelope(
    snn: &SnnNetwork,
    data: &Dataset,
    t: usize,
    batch_size: usize,
    rel_margin: f64,
    abs_margin: f64,
) -> RateEnvelope {
    let batches: Vec<ull_tensor::Tensor> =
        data.eval_batches(batch_size).map(|b| b.images).collect();
    profile_envelope_batches(snn, &batches, t, rel_margin, abs_margin)
}

/// [`profile_envelope`] over caller-assembled calibration batches instead
/// of a [`Dataset`]. The envelope is the elementwise min/max over the
/// given batches, so callers control the batch-size spread it captures —
/// a serving-side profiler passes batches shaped like live traffic
/// (e.g. every size its dynamic batcher can assemble).
///
/// # Panics
///
/// Panics if `batches` is empty.
pub fn profile_envelope_batches(
    snn: &SnnNetwork,
    batches: &[ull_tensor::Tensor],
    t: usize,
    rel_margin: f64,
    abs_margin: f64,
) -> RateEnvelope {
    let _span = ull_obs::span("robust.watchdog.profile");
    let mut min: Option<Vec<f64>> = None;
    let mut max: Option<Vec<f64>> = None;
    for images in batches {
        let report = snn.forward(images, t).stats.report();
        match (&mut min, &mut max) {
            (Some(lo), Some(hi)) => {
                for (slot, &r) in lo.iter_mut().zip(&report.spike_rate) {
                    *slot = slot.min(r);
                }
                for (slot, &r) in hi.iter_mut().zip(&report.spike_rate) {
                    *slot = slot.max(r);
                }
            }
            _ => {
                min = Some(report.spike_rate.clone());
                max = Some(report.spike_rate);
            }
        }
    }
    let min = min.expect("no calibration batches to profile");
    let max = max.expect("no calibration batches to profile");
    RateEnvelope {
        min,
        max,
        rel_margin,
        abs_margin,
        steps: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultedNetwork, InferenceFault};
    use ull_data::{generate, SynthCifarConfig};
    use ull_nn::models;
    use ull_snn::{SnnNetwork, SpikeSpec};

    fn setup() -> (SnnNetwork, Dataset) {
        let cfg = SynthCifarConfig::tiny(3);
        let (_, test) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 17);
        let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
        (SnnNetwork::from_network(&dnn, &specs).unwrap(), test)
    }

    #[test]
    fn clean_runs_never_trip_the_watchdog() {
        let (snn, data) = setup();
        let envelope = profile_envelope(&snn, &data, 3, 8, 0.5, 0.05);
        // 20 clean checks over varying batch partitions of the same
        // distribution: the acceptance criterion demands zero false
        // positives.
        let mut checks = 0;
        for batch_size in [3usize, 4, 5, 8, 16, 32] {
            for batch in data.eval_batches(batch_size) {
                let report = snn.forward(&batch.images, 3).stats.report();
                let violations = envelope.check(&report);
                assert!(
                    violations.is_empty(),
                    "clean batch (size {batch_size}) tripped watchdog: {violations:?}"
                );
                checks += 1;
                if checks >= 20 {
                    return;
                }
            }
        }
        assert!(checks >= 20, "not enough clean batches to run 20 checks");
    }

    #[test]
    fn watchdog_detects_high_ber_weight_corruption() {
        let (snn, data) = setup();
        let envelope = profile_envelope(&snn, &data, 3, 8, 0.5, 0.05);
        let batch = data.eval_batches(32).next().unwrap();
        let mut detected = 0;
        let trials = 20;
        for seed in 0..trials {
            let cfg = FaultConfig::new(seed).with(InferenceFault::WeightBitFlip { ber: 1e-2 });
            let faulted = FaultedNetwork::new(&snn, &cfg);
            let report = faulted.forward(&batch.images, 3, 0).stats.report();
            if !envelope.is_healthy(&report) {
                detected += 1;
            }
        }
        assert!(
            detected * 10 >= trials * 9,
            "watchdog detected only {detected}/{trials} high-BER corruptions"
        );
    }

    #[test]
    fn watchdog_flags_stuck_and_silent_layers() {
        let (snn, data) = setup();
        let envelope = profile_envelope(&snn, &data, 2, 8, 0.5, 0.05);
        let batch = data.eval_batches(16).next().unwrap();
        let silent = FaultedNetwork::new(
            &snn,
            &FaultConfig::new(4).with(InferenceFault::StuckAtZero { rate: 1.0 }),
        );
        let saturated = FaultedNetwork::new(
            &snn,
            &FaultConfig::new(4).with(InferenceFault::StuckAtSaturated { rate: 1.0 }),
        );
        let silent_report = silent.forward(&batch.images, 2, 0).stats.report();
        let saturated_report = saturated.forward(&batch.images, 2, 0).stats.report();
        assert!(
            !envelope.is_healthy(&silent_report),
            "all-silent run must flag"
        );
        assert!(
            !envelope.is_healthy(&saturated_report),
            "all-saturated run must flag"
        );
    }

    #[test]
    fn batch_slice_profiling_matches_dataset_profiling() {
        let (snn, data) = setup();
        let from_dataset = profile_envelope(&snn, &data, 2, 8, 0.5, 0.05);
        let batches: Vec<ull_tensor::Tensor> = data.eval_batches(8).map(|b| b.images).collect();
        let from_batches = profile_envelope_batches(&snn, &batches, 2, 0.5, 0.05);
        assert_eq!(from_dataset, from_batches);
    }

    #[test]
    fn mismatched_report_shape_panics() {
        let (snn, data) = setup();
        let envelope = profile_envelope(&snn, &data, 2, 8, 0.5, 0.05);
        let batch = data.eval_batches(8).next().unwrap();
        let report = snn.forward(&batch.images, 3).stats.report();
        let err = std::panic::catch_unwind(|| envelope.check(&report));
        assert!(err.is_err(), "differing T must be rejected");
    }
}
