//! Deterministic, seeded inference-fault models.
//!
//! Every fault decision is a pure function of the configuration seed and
//! the fault's *coordinates* — layer id, flat element index, bit position,
//! time step, global sample index — hashed with
//! [`ull_tensor::init::mix64`]. Nothing depends on evaluation order, batch
//! chunking or thread count, so a faulted run is bit-identical for any
//! `ULL_THREADS` setting and any batch split, and two [`FaultedNetwork`]s
//! built from the same clean network and config are identical.
//!
//! Faults come in two kinds:
//!
//! * **static** (weight/threshold bit-flips, threshold drift) — applied
//!   once to a private copy of the network at [`FaultedNetwork::new`];
//! * **dynamic** (stuck-at neurons, spike deletion/insertion, input
//!   noise) — applied per time step through the [`ull_snn::StepTamper`]
//!   seam, or to the input batch before encoding.
//!
//! The clean network is never modified, and with an empty fault list the
//! wrapper forwards through the untouched clean path — byte-identical
//! output, asserted by this module's tests.

use serde::{Deserialize, Serialize};
use ull_nn::NodeId;
use ull_snn::{SnnNetwork, SnnOp, SnnOutput, SpikeStats, StepTamper};
use ull_tensor::init::{mix64, unit_f32};
use ull_tensor::Tensor;

// Domain-separation salts: the first word fed to `mix64` so the same
// (node, element) coordinates never collide across fault families.
const SALT_WEIGHT: u64 = 0x57_45_49_47_48_54; // "WEIGHT"
const SALT_THRESH: u64 = 0x54_48_52_45_53_48; // "THRESH"
const SALT_DRIFT: u64 = 0x44_52_49_46_54; // "DRIFT"
const SALT_STUCK0: u64 = 0x53_54_55_43_4b_30; // "STUCK0"
const SALT_STUCK1: u64 = 0x53_54_55_43_4b_31; // "STUCK1"
const SALT_DELETE: u64 = 0x44_45_4c_45_54_45; // "DELETE"
const SALT_INSERT: u64 = 0x49_4e_53_45_52_54; // "INSERT"
const SALT_INPUT: u64 = 0x49_4e_50_55_54; // "INPUT"

/// One hardware-fault model applied during inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InferenceFault {
    /// Flip each bit of every conv/linear weight independently with
    /// probability `ber` (the raw bit-error rate of the weight memory).
    /// Exponent-bit flips can produce huge or non-finite weights; the
    /// simulator's membrane sanitisation keeps the run alive.
    WeightBitFlip {
        /// Per-bit flip probability.
        ber: f64,
    },
    /// Flip each bit of every firing threshold `V^th` with probability
    /// `ber` — thresholds live in the same faulty memory as weights.
    ThresholdBitFlip {
        /// Per-bit flip probability.
        ber: f64,
    },
    /// Analog threshold drift: each layer's `V^th` is scaled by a seeded
    /// factor in `[1 − drift, 1 + drift]` (models temperature/ageing
    /// variation in analog neuron circuits).
    ThresholdDrift {
        /// Maximum relative drift magnitude.
        drift: f32,
    },
    /// Each neuron is permanently stuck silent with probability `rate`
    /// (dead circuit: its spikes never leave the layer).
    StuckAtZero {
        /// Per-neuron stuck probability.
        rate: f64,
    },
    /// Each neuron is permanently stuck firing with probability `rate`
    /// (shorted circuit: it emits a full-amplitude spike every step).
    StuckAtSaturated {
        /// Per-neuron stuck probability.
        rate: f64,
    },
    /// Each transmitted spike is dropped independently with probability
    /// `rate` (lossy spike fabric / packet drops).
    SpikeDelete {
        /// Per-spike drop probability.
        rate: f64,
    },
    /// Each silent (neuron, step) slot emits a spurious full-amplitude
    /// spike with probability `rate` (crosstalk / noise-triggered fires).
    SpikeInsert {
        /// Per-slot insertion probability.
        rate: f64,
    },
    /// Additive Gaussian pixel noise with standard deviation `sigma`
    /// applied to the analog input image (sensor corruption). Direct
    /// encoding presents the same corrupted frame at every time step.
    InputNoise {
        /// Noise standard deviation (input images are roughly unit scale).
        sigma: f32,
    },
}

impl InferenceFault {
    /// Short stable name used in sweep reports and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            InferenceFault::WeightBitFlip { .. } => "weight_bitflip",
            InferenceFault::ThresholdBitFlip { .. } => "threshold_bitflip",
            InferenceFault::ThresholdDrift { .. } => "threshold_drift",
            InferenceFault::StuckAtZero { .. } => "stuck_at_zero",
            InferenceFault::StuckAtSaturated { .. } => "stuck_at_saturated",
            InferenceFault::SpikeDelete { .. } => "spike_delete",
            InferenceFault::SpikeInsert { .. } => "spike_insert",
            InferenceFault::InputNoise { .. } => "input_noise",
        }
    }

    /// The fault's scalar intensity (BER, rate, drift or sigma).
    pub fn intensity(&self) -> f64 {
        match *self {
            InferenceFault::WeightBitFlip { ber } | InferenceFault::ThresholdBitFlip { ber } => ber,
            InferenceFault::ThresholdDrift { drift } => drift as f64,
            InferenceFault::StuckAtZero { rate }
            | InferenceFault::StuckAtSaturated { rate }
            | InferenceFault::SpikeDelete { rate }
            | InferenceFault::SpikeInsert { rate } => rate,
            InferenceFault::InputNoise { sigma } => sigma as f64,
        }
    }

    /// Rebuilds the fault with a new scalar intensity — the sweep harness
    /// uses this to trace a degradation curve for one fault family.
    pub fn with_intensity(&self, x: f64) -> InferenceFault {
        match self {
            InferenceFault::WeightBitFlip { .. } => InferenceFault::WeightBitFlip { ber: x },
            InferenceFault::ThresholdBitFlip { .. } => InferenceFault::ThresholdBitFlip { ber: x },
            InferenceFault::ThresholdDrift { .. } => {
                InferenceFault::ThresholdDrift { drift: x as f32 }
            }
            InferenceFault::StuckAtZero { .. } => InferenceFault::StuckAtZero { rate: x },
            InferenceFault::StuckAtSaturated { .. } => InferenceFault::StuckAtSaturated { rate: x },
            InferenceFault::SpikeDelete { .. } => InferenceFault::SpikeDelete { rate: x },
            InferenceFault::SpikeInsert { .. } => InferenceFault::SpikeInsert { rate: x },
            InferenceFault::InputNoise { .. } => InferenceFault::InputNoise { sigma: x as f32 },
        }
    }
}

/// A seeded set of inference faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The faults to apply (order does not matter — each family hashes
    /// with its own domain salt).
    pub faults: Vec<InferenceFault>,
    /// Seed for every fault decision.
    pub seed: u64,
}

impl FaultConfig {
    /// An empty (fault-free) config with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            faults: Vec::new(),
            seed,
        }
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: InferenceFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True if no fault has a non-zero intensity.
    pub fn is_clean(&self) -> bool {
        self.faults.iter().all(|f| f.intensity() == 0.0)
    }
}

/// Per-step dynamic faults, resolved from a [`FaultConfig`].
#[derive(Debug, Clone, Copy, Default)]
struct DynamicFaults {
    stuck_zero: f64,
    stuck_sat: f64,
    delete: f64,
    insert: f64,
}

impl DynamicFaults {
    fn any(&self) -> bool {
        self.stuck_zero > 0.0 || self.stuck_sat > 0.0 || self.delete > 0.0 || self.insert > 0.0
    }
}

/// [`StepTamper`] implementation driving the dynamic fault families.
///
/// `base` is the global index of the first sample of the `forward` call's
/// batch, so `base + batch_offset + row` identifies a sample independently
/// of batch boundaries and thread chunking.
struct DynamicTamper {
    f: DynamicFaults,
    seed: u64,
    base: usize,
}

impl StepTamper for DynamicTamper {
    fn tamper_spikes(
        &self,
        step: usize,
        node: NodeId,
        batch_offset: usize,
        amp: f32,
        out: &mut Tensor,
    ) {
        let rows = out.shape()[0];
        if rows == 0 {
            return;
        }
        let feats = out.len() / rows;
        let data = out.data_mut();
        for r in 0..rows {
            let sample = (self.base + batch_offset + r) as u64;
            for j in 0..feats {
                let v = &mut data[r * feats + j];
                let coords = [step as u64, node as u64, sample, j as u64];
                // Transient fabric faults per (step, sample, neuron).
                if *v != 0.0 && self.f.delete > 0.0 {
                    if (unit_f32(mix64(self.seed ^ SALT_DELETE, &coords)) as f64) < self.f.delete {
                        *v = 0.0;
                    }
                } else if *v == 0.0
                    && self.f.insert > 0.0
                    && (unit_f32(mix64(self.seed ^ SALT_INSERT, &coords)) as f64) < self.f.insert
                {
                    *v = amp;
                }
                // Permanent stuck-at circuits per (node, neuron): the same
                // physical neuron is broken for every sample and step, and
                // a stuck circuit overrides fabric noise.
                let cell = [node as u64, j as u64];
                if self.f.stuck_zero > 0.0
                    && (unit_f32(mix64(self.seed ^ SALT_STUCK0, &cell)) as f64) < self.f.stuck_zero
                {
                    *v = 0.0;
                } else if self.f.stuck_sat > 0.0
                    && (unit_f32(mix64(self.seed ^ SALT_STUCK1, &cell)) as f64) < self.f.stuck_sat
                {
                    *v = amp;
                }
            }
        }
    }
}

/// An [`SnnNetwork`] with a fault model attached.
///
/// Construction clones the clean network and applies the static faults;
/// the clean network is never touched. [`FaultedNetwork::forward`] then
/// injects the dynamic faults per time step. With an empty or all-zero
/// config the wrapper calls the clean forward path and the output is
/// byte-identical to `clean.forward(x, t)`.
pub struct FaultedNetwork {
    net: SnnNetwork,
    dynamic: DynamicFaults,
    input_sigma: f32,
    seed: u64,
}

impl FaultedNetwork {
    /// Clones `clean`, applies the static faults of `cfg`, and prepares
    /// the dynamic tamper hook.
    pub fn new(clean: &SnnNetwork, cfg: &FaultConfig) -> Self {
        let _span = ull_obs::span("robust.fault.build");
        let mut net = clean.clone();
        let mut dynamic = DynamicFaults::default();
        let mut input_sigma = 0.0f32;
        for fault in &cfg.faults {
            match *fault {
                InferenceFault::WeightBitFlip { ber } => flip_weight_bits(&mut net, ber, cfg.seed),
                InferenceFault::ThresholdBitFlip { ber } => {
                    flip_threshold_bits(&mut net, ber, cfg.seed)
                }
                InferenceFault::ThresholdDrift { drift } => {
                    drift_thresholds(&mut net, drift, cfg.seed)
                }
                InferenceFault::StuckAtZero { rate } => dynamic.stuck_zero = rate,
                InferenceFault::StuckAtSaturated { rate } => dynamic.stuck_sat = rate,
                InferenceFault::SpikeDelete { rate } => dynamic.delete = rate,
                InferenceFault::SpikeInsert { rate } => dynamic.insert = rate,
                InferenceFault::InputNoise { sigma } => input_sigma = sigma,
            }
        }
        FaultedNetwork {
            net,
            dynamic,
            input_sigma,
            seed: cfg.seed,
        }
    }

    /// The (possibly statically corrupted) network the wrapper simulates.
    pub fn network(&self) -> &SnnNetwork {
        &self.net
    }

    /// Runs faulted inference. `batch_start` is the global index of
    /// `x`'s first sample — pass the cumulative sample count when
    /// evaluating a dataset batch by batch so per-sample faults do not
    /// depend on the batch size ([`evaluate_faulted`] does this).
    pub fn forward(&self, x: &Tensor, t_steps: usize, batch_start: usize) -> SnnOutput {
        let corrupted;
        let input = if self.input_sigma > 0.0 {
            corrupted = corrupt_input(x, self.input_sigma, self.seed, batch_start);
            &corrupted
        } else {
            x
        };
        if self.dynamic.any() {
            let tamper = DynamicTamper {
                f: self.dynamic,
                seed: self.seed,
                base: batch_start,
            };
            self.net.forward_tampered(input, t_steps, &tamper)
        } else {
            self.net.forward(input, t_steps)
        }
    }
}

/// Evaluates a faulted network over a dataset, mirroring
/// [`ull_snn::evaluate_snn`] but threading the global sample index through
/// so the fault pattern is independent of `batch_size` and `ULL_THREADS`.
pub fn evaluate_faulted(
    faulted: &FaultedNetwork,
    data: &ull_data::Dataset,
    t: usize,
    batch_size: usize,
) -> (f32, SpikeStats) {
    let _span = ull_obs::span("robust.evaluate_faulted");
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut merged: Option<SpikeStats> = None;
    for batch in data.eval_batches(batch_size) {
        let out = faulted.forward(&batch.images, t, seen);
        for (pred, &label) in out.logits.argmax_rows().iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
        seen += batch.labels.len();
        match &mut merged {
            Some(m) => m.merge(&out.stats),
            None => merged = Some(out.stats),
        }
    }
    let stats = merged.unwrap_or_else(|| SpikeStats::new(faulted.network().nodes().len(), 0, t));
    (correct as f32 / seen.max(1) as f32, stats)
}

/// Flips each bit of every conv/linear weight of a (non-spiking) DNN with
/// probability `ber` — the DNN counterpart of
/// [`InferenceFault::WeightBitFlip`], used by the resilience sweep to
/// compare ANN and SNN degradation under the *same* memory fault model.
///
/// Node ids are preserved by `SnnNetwork::from_network`, and the hash is
/// keyed by (node, element, bit) with the same salt, so a DNN and its
/// converted SNN see the identical physical fault pattern for a given
/// seed.
pub fn flip_dnn_weight_bits(net: &mut ull_nn::Network, ber: f64, seed: u64) {
    if ber <= 0.0 {
        return;
    }
    let salt = seed ^ SALT_WEIGHT;
    for (id, node) in net.nodes_mut().iter_mut().enumerate() {
        let weight = match &mut node.op {
            ull_nn::NodeOp::Conv2d { weight, .. } | ull_nn::NodeOp::Linear { weight, .. } => weight,
            _ => continue,
        };
        for (i, v) in weight.value.data_mut().iter_mut().enumerate() {
            let mut bits = v.to_bits();
            for b in 0..32u64 {
                if (unit_f32(mix64(salt, &[id as u64, i as u64, b])) as f64) < ber {
                    bits ^= 1 << b;
                }
            }
            *v = f32::from_bits(bits);
        }
    }
}

/// Flips each bit of every conv/linear weight with probability `ber`,
/// keyed by (node, element, bit).
fn flip_weight_bits(net: &mut SnnNetwork, ber: f64, seed: u64) {
    if ber <= 0.0 {
        return;
    }
    let salt = seed ^ SALT_WEIGHT;
    for (id, node) in net.nodes_mut().iter_mut().enumerate() {
        let weight = match &mut node.op {
            SnnOp::Conv2d { weight, .. } | SnnOp::Linear { weight, .. } => weight,
            _ => continue,
        };
        for (i, v) in weight.value.data_mut().iter_mut().enumerate() {
            let mut bits = v.to_bits();
            for b in 0..32u64 {
                if (unit_f32(mix64(salt, &[id as u64, i as u64, b])) as f64) < ber {
                    bits ^= 1 << b;
                }
            }
            *v = f32::from_bits(bits);
        }
    }
}

/// Flips each bit of every spike layer's `V^th` with probability `ber`.
fn flip_threshold_bits(net: &mut SnnNetwork, ber: f64, seed: u64) {
    if ber <= 0.0 {
        return;
    }
    let salt = seed ^ SALT_THRESH;
    for (id, node) in net.nodes_mut().iter_mut().enumerate() {
        if let SnnOp::Spike(layer) = &mut node.op {
            let v = &mut layer.v_th.value.data_mut()[0];
            let mut bits = v.to_bits();
            for b in 0..32u64 {
                if (unit_f32(mix64(salt, &[id as u64, b])) as f64) < ber {
                    bits ^= 1 << b;
                }
            }
            *v = f32::from_bits(bits);
        }
    }
}

/// Scales each spike layer's `V^th` by a seeded factor in
/// `[1 − drift, 1 + drift]`.
fn drift_thresholds(net: &mut SnnNetwork, drift: f32, seed: u64) {
    if drift == 0.0 {
        return;
    }
    let salt = seed ^ SALT_DRIFT;
    for (id, node) in net.nodes_mut().iter_mut().enumerate() {
        if let SnnOp::Spike(layer) = &mut node.op {
            let u = unit_f32(mix64(salt, &[id as u64]));
            let factor = 1.0 + drift * (2.0 * u - 1.0);
            layer.v_th.value.data_mut()[0] *= factor;
        }
    }
}

/// Adds seeded Gaussian noise to an input batch, keyed by
/// (global sample, element) so the corruption pattern is independent of
/// batch boundaries.
fn corrupt_input(x: &Tensor, sigma: f32, seed: u64, batch_start: usize) -> Tensor {
    let mut out = x.clone();
    let rows = out.shape()[0];
    if rows == 0 {
        return out;
    }
    let feats = out.len() / rows;
    let salt = seed ^ SALT_INPUT;
    let data = out.data_mut();
    for r in 0..rows {
        let sample = (batch_start + r) as u64;
        for j in 0..feats {
            // Box–Muller from two coordinate hashes; offsets keep the
            // uniforms strictly inside (0, 1).
            let u1 =
                ((mix64(salt, &[sample, j as u64, 0]) >> 40) as f64 + 0.5) / (1u64 << 24) as f64;
            let u2 =
                ((mix64(salt, &[sample, j as u64, 1]) >> 40) as f64 + 0.5) / (1u64 << 24) as f64;
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            data[r * feats + j] += sigma * z as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_data::{generate, SynthCifarConfig};
    use ull_nn::models;
    use ull_snn::SpikeSpec;

    fn tiny_snn(seed: u64) -> SnnNetwork {
        let dnn = models::vgg_micro(3, 8, 0.25, seed);
        let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
        SnnNetwork::from_network(&dnn, &specs).unwrap()
    }

    fn tiny_data() -> ull_data::Dataset {
        let (_, test) = generate(&SynthCifarConfig::tiny(3));
        test
    }

    #[test]
    fn empty_config_is_byte_identical_to_clean_forward() {
        let snn = tiny_snn(11);
        let data = tiny_data();
        let x = data.eval_batches(8).next().unwrap().images;
        let clean = snn.forward(&x, 3);
        let faulted = FaultedNetwork::new(&snn, &FaultConfig::new(99));
        let wrapped = faulted.forward(&x, 3, 0);
        assert_eq!(
            clean
                .logits
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            wrapped
                .logits
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(clean.stats, wrapped.stats);
    }

    #[test]
    fn zero_intensity_faults_are_byte_identical_to_clean_forward() {
        let snn = tiny_snn(11);
        let data = tiny_data();
        let x = data.eval_batches(8).next().unwrap().images;
        let cfg = FaultConfig::new(5)
            .with(InferenceFault::WeightBitFlip { ber: 0.0 })
            .with(InferenceFault::SpikeDelete { rate: 0.0 })
            .with(InferenceFault::InputNoise { sigma: 0.0 });
        assert!(cfg.is_clean());
        let faulted = FaultedNetwork::new(&snn, &cfg);
        let clean = snn.forward(&x, 2);
        let wrapped = faulted.forward(&x, 2, 0);
        assert_eq!(
            clean
                .logits
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            wrapped
                .logits
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn construction_leaves_clean_network_untouched() {
        let snn = tiny_snn(3);
        let reference = snn.clone();
        let cfg = FaultConfig::new(7)
            .with(InferenceFault::WeightBitFlip { ber: 1e-2 })
            .with(InferenceFault::ThresholdDrift { drift: 0.5 });
        let faulted = FaultedNetwork::new(&snn, &cfg);
        assert_eq!(snn, reference);
        // ... and the faulted copy really is different.
        assert_ne!(*faulted.network(), reference);
    }

    #[test]
    fn fault_application_is_deterministic() {
        let snn = tiny_snn(3);
        let cfg = FaultConfig::new(42)
            .with(InferenceFault::WeightBitFlip { ber: 1e-3 })
            .with(InferenceFault::ThresholdBitFlip { ber: 1e-3 });
        let a = FaultedNetwork::new(&snn, &cfg);
        let b = FaultedNetwork::new(&snn, &cfg);
        assert_eq!(a.network(), b.network());
        // A different seed corrupts differently.
        let other = FaultedNetwork::new(
            &snn,
            &FaultConfig {
                seed: 43,
                ..cfg.clone()
            },
        );
        assert_ne!(a.network(), other.network());
    }

    #[test]
    fn stuck_at_zero_with_rate_one_silences_hidden_layers() {
        let snn = tiny_snn(5);
        let data = tiny_data();
        let x = data.eval_batches(4).next().unwrap().images;
        let cfg = FaultConfig::new(1).with(InferenceFault::StuckAtZero { rate: 1.0 });
        let faulted = FaultedNetwork::new(&snn, &cfg);
        let out = faulted.forward(&x, 2, 0);
        assert!(out.stats.spikes_per_node().iter().all(|&s| s == 0));
    }

    #[test]
    fn spike_insert_raises_activity_and_delete_lowers_it() {
        let snn = tiny_snn(5);
        let data = tiny_data();
        let x = data.eval_batches(8).next().unwrap().images;
        let base: u64 = snn.forward(&x, 3).stats.spikes_per_node().iter().sum();
        let ins = FaultedNetwork::new(
            &snn,
            &FaultConfig::new(2).with(InferenceFault::SpikeInsert { rate: 0.3 }),
        );
        let del = FaultedNetwork::new(
            &snn,
            &FaultConfig::new(2).with(InferenceFault::SpikeDelete { rate: 0.5 }),
        );
        let more: u64 = ins.forward(&x, 3, 0).stats.spikes_per_node().iter().sum();
        let fewer: u64 = del.forward(&x, 3, 0).stats.spikes_per_node().iter().sum();
        assert!(
            more > base,
            "insertions must raise activity ({more} vs {base})"
        );
        assert!(
            fewer < base,
            "deletions must lower activity ({fewer} vs {base})"
        );
    }

    #[test]
    fn faulted_evaluation_is_independent_of_batch_size() {
        let snn = tiny_snn(9);
        let data = tiny_data();
        let cfg = FaultConfig::new(13)
            .with(InferenceFault::SpikeDelete { rate: 0.2 })
            .with(InferenceFault::InputNoise { sigma: 0.1 });
        let faulted = FaultedNetwork::new(&snn, &cfg);
        let (acc_a, stats_a) = evaluate_faulted(&faulted, &data, 2, 4);
        let (acc_b, stats_b) = evaluate_faulted(&faulted, &data, 2, 16);
        assert_eq!(acc_a.to_bits(), acc_b.to_bits());
        assert_eq!(stats_a.spikes_per_node(), stats_b.spikes_per_node());
    }

    #[test]
    fn high_ber_weight_corruption_does_not_produce_non_finite_logits() {
        // Exponent bit flips create huge/NaN weights; the hardened
        // simulator must still return finite logits.
        let snn = tiny_snn(21);
        let data = tiny_data();
        let x = data.eval_batches(8).next().unwrap().images;
        for seed in 0..5 {
            let cfg = FaultConfig::new(seed).with(InferenceFault::WeightBitFlip { ber: 1e-2 });
            let out = FaultedNetwork::new(&snn, &cfg).forward(&x, 2, 0);
            assert!(
                out.logits.all_finite(),
                "seed {seed}: corrupted run produced non-finite logits"
            );
        }
    }
}
