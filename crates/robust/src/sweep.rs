//! The resilience-sweep harness: fault-family × intensity × T grids.
//!
//! For each time-step budget `T` the sweep profiles a clean watchdog
//! envelope, then evaluates every (fault family, intensity) cell with
//! [`evaluate_faulted`], recording accuracy, total spiking activity and
//! whether the watchdog flagged the run. The source DNN is swept through
//! the same weight-memory fault model ([`flip_dnn_weight_bits`]) so the
//! report directly compares ANN and SNN degradation under identical
//! physical faults — the robustness companion to the paper's accuracy and
//! energy comparisons.
//!
//! Everything is seeded and coordinate-hashed, so a sweep is bit-identical
//! across `ULL_THREADS` settings and repeated runs.

use serde::{Deserialize, Serialize};
use ull_data::Dataset;
use ull_nn::Network;
use ull_snn::SnnNetwork;

use crate::faults::{
    evaluate_faulted, flip_dnn_weight_bits, FaultConfig, FaultedNetwork, InferenceFault,
};
use crate::watchdog::profile_envelope;

/// Grid definition for [`resilience_sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Time-step budgets to evaluate (the paper's regime is 2–5).
    pub t_steps: Vec<usize>,
    /// Fault families to sweep; each template's intensity is replaced by
    /// every value in `intensities`.
    pub families: Vec<InferenceFault>,
    /// Intensity grid (BER / rate / sigma, meaning per family).
    pub intensities: Vec<f64>,
    /// Seed for every fault decision.
    pub seed: u64,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Watchdog relative margin (see [`crate::watchdog`]).
    pub rel_margin: f64,
    /// Watchdog absolute margin.
    pub abs_margin: f64,
}

impl SweepConfig {
    /// The standard grid used by the `resilience_sweep` benchmark: all
    /// fault families over a logarithmic intensity ladder at T ∈ {2,3,5}.
    pub fn standard(seed: u64) -> Self {
        SweepConfig {
            t_steps: vec![2, 3, 5],
            families: vec![
                InferenceFault::WeightBitFlip { ber: 0.0 },
                InferenceFault::ThresholdBitFlip { ber: 0.0 },
                InferenceFault::ThresholdDrift { drift: 0.0 },
                InferenceFault::StuckAtZero { rate: 0.0 },
                InferenceFault::StuckAtSaturated { rate: 0.0 },
                InferenceFault::SpikeDelete { rate: 0.0 },
                InferenceFault::SpikeInsert { rate: 0.0 },
                InferenceFault::InputNoise { sigma: 0.0 },
            ],
            intensities: vec![1e-4, 1e-3, 1e-2, 1e-1],
            seed,
            batch_size: 32,
            rel_margin: 0.5,
            abs_margin: 0.05,
        }
    }

    /// A two-family, two-intensity, single-T grid for smoke tests.
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            t_steps: vec![2],
            families: vec![
                InferenceFault::WeightBitFlip { ber: 0.0 },
                InferenceFault::SpikeDelete { rate: 0.0 },
            ],
            intensities: vec![1e-3, 1e-1],
            seed,
            batch_size: 16,
            rel_margin: 0.5,
            abs_margin: 0.05,
        }
    }
}

/// One SNN grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Fault family name ([`InferenceFault::name`]).
    pub fault: String,
    /// Intensity of the fault.
    pub intensity: f64,
    /// Time-step budget.
    pub t: usize,
    /// Accuracy under fault.
    pub accuracy: f32,
    /// Accuracy drop versus the clean run at the same T.
    pub accuracy_drop: f32,
    /// Total spikes per image, summed over layers.
    pub spikes_per_image: f64,
    /// Number of layers whose spike rate left the clean envelope.
    pub watchdog_violations: usize,
}

/// One DNN grid cell (weight-memory bit flips; no time dimension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnSweepCell {
    /// Per-bit error rate applied to conv/linear weights.
    pub intensity: f64,
    /// Accuracy under fault.
    pub accuracy: f32,
    /// Accuracy drop versus the clean DNN.
    pub accuracy_drop: f32,
}

/// Clean reference accuracy at one time-step budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanPoint {
    /// Time-step budget.
    pub t: usize,
    /// Clean SNN accuracy.
    pub accuracy: f32,
}

/// Full resilience-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Clean SNN accuracy per T.
    pub clean_snn: Vec<CleanPoint>,
    /// Clean DNN accuracy.
    pub clean_dnn: f32,
    /// SNN fault grid.
    pub cells: Vec<SweepCell>,
    /// DNN weight-fault curve.
    pub dnn_cells: Vec<DnnSweepCell>,
    /// Config the sweep ran with.
    pub config: SweepConfig,
}

impl SweepReport {
    /// Renders the DNN-vs-SNN degradation table as GitHub markdown — the
    /// block the benchmark binary writes into EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("| fault | intensity |");
        for p in &self.clean_snn {
            s.push_str(&format!(" SNN T={} acc |", p.t));
        }
        s.push_str(" watchdog | DNN acc |\n");
        s.push_str("|---|---|");
        for _ in &self.clean_snn {
            s.push_str("---|");
        }
        s.push_str("---|---|\n");
        s.push_str("| (clean) | – |");
        for p in &self.clean_snn {
            s.push_str(&format!(" {:.3} |", p.accuracy));
        }
        s.push_str(&format!(" ok | {:.3} |\n", self.clean_dnn));
        let mut families: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !families.contains(&c.fault.as_str()) {
                families.push(&c.fault);
            }
        }
        for fault in families {
            for &x in &self.config.intensities {
                let row: Vec<&SweepCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.fault == fault && c.intensity == x)
                    .collect();
                if row.is_empty() {
                    continue;
                }
                s.push_str(&format!("| {fault} | {x:.0e} |"));
                for p in &self.clean_snn {
                    match row.iter().find(|c| c.t == p.t) {
                        Some(c) => s.push_str(&format!(" {:.3} |", c.accuracy)),
                        None => s.push_str(" – |"),
                    }
                }
                let flagged = row.iter().filter(|c| c.watchdog_violations > 0).count();
                s.push_str(&format!(" {}/{} |", flagged, row.len()));
                if fault == "weight_bitflip" {
                    match self.dnn_cells.iter().find(|c| c.intensity == x) {
                        Some(c) => s.push_str(&format!(" {:.3} |\n", c.accuracy)),
                        None => s.push_str(" – |\n"),
                    }
                } else {
                    s.push_str(" – |\n");
                }
            }
        }
        s
    }
}

/// Runs the full fault grid. `dnn` must be the source network of `snn`
/// (same node ids) so the weight-fault comparison is physical.
pub fn resilience_sweep(
    dnn: &Network,
    snn: &SnnNetwork,
    data: &Dataset,
    cfg: &SweepConfig,
) -> SweepReport {
    let _span = ull_obs::span("robust.sweep");
    let mut clean_snn = Vec::with_capacity(cfg.t_steps.len());
    let mut cells = Vec::new();
    for &t in &cfg.t_steps {
        let envelope =
            profile_envelope(snn, data, t, cfg.batch_size, cfg.rel_margin, cfg.abs_margin);
        let clean = FaultedNetwork::new(snn, &FaultConfig::new(cfg.seed));
        let (clean_acc, _) = evaluate_faulted(&clean, data, t, cfg.batch_size);
        clean_snn.push(CleanPoint {
            t,
            accuracy: clean_acc,
        });
        for family in &cfg.families {
            for &x in &cfg.intensities {
                let fault = family.with_intensity(x);
                let config = FaultConfig::new(cfg.seed).with(fault);
                let faulted = FaultedNetwork::new(snn, &config);
                let (accuracy, stats) = evaluate_faulted(&faulted, data, t, cfg.batch_size);
                let report = stats.report();
                let violations = envelope.check(&report).len();
                cells.push(SweepCell {
                    fault: fault.name().to_string(),
                    intensity: x,
                    t,
                    accuracy,
                    accuracy_drop: clean_acc - accuracy,
                    spikes_per_image: report.spikes_per_image.iter().sum(),
                    watchdog_violations: violations,
                });
            }
        }
    }

    let clean_dnn = ull_nn::evaluate(dnn, data, cfg.batch_size);
    let mut dnn_cells = Vec::with_capacity(cfg.intensities.len());
    for &x in &cfg.intensities {
        let mut corrupted = dnn.clone();
        flip_dnn_weight_bits(&mut corrupted, x, cfg.seed);
        let accuracy = ull_nn::evaluate(&corrupted, data, cfg.batch_size);
        dnn_cells.push(DnnSweepCell {
            intensity: x,
            accuracy,
            accuracy_drop: clean_dnn - accuracy,
        });
    }

    SweepReport {
        clean_snn,
        clean_dnn,
        cells,
        dnn_cells,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_data::{generate, SynthCifarConfig};
    use ull_nn::models;
    use ull_snn::SpikeSpec;

    fn setup() -> (Network, SnnNetwork, Dataset) {
        let cfg = SynthCifarConfig::tiny(3);
        let (_, test) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 31);
        let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
        let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
        (dnn, snn, test)
    }

    #[test]
    fn smoke_sweep_covers_the_grid() {
        let (dnn, snn, data) = setup();
        let cfg = SweepConfig::smoke(7);
        let report = resilience_sweep(&dnn, &snn, &data, &cfg);
        assert_eq!(report.clean_snn.len(), 1);
        assert_eq!(report.cells.len(), 2 * 2);
        assert_eq!(report.dnn_cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.accuracy.is_finite());
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
        let md = report.to_markdown();
        assert!(md.contains("weight_bitflip"));
        assert!(md.contains("spike_delete"));
        assert!(md.contains("(clean)"));
    }

    #[test]
    fn sweep_is_reproducible() {
        let (dnn, snn, data) = setup();
        let cfg = SweepConfig::smoke(3);
        let a = resilience_sweep(&dnn, &snn, &data, &cfg);
        let b = resilience_sweep(&dnn, &snn, &data, &cfg);
        assert_eq!(a, b);
    }
}
