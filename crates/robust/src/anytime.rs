//! Deadline-aware anytime inference.
//!
//! A T-step SNN normally commits to its prediction only after all T steps.
//! Under a latency deadline that is wasteful: for most inputs the
//! running-mean logits already separate after one or two steps, and extra
//! steps only confirm the decision. [`anytime_forward`] emits each
//! sample's prediction at the first step `t ≤ T` where the logit margin
//! (top-1 minus top-2 of the running mean) clears a gate, falling back to
//! the full-T prediction for samples that never clear it — graceful
//! degradation instead of a missed deadline.
//!
//! The gate is data-calibrated: [`calibrate_margin`] picks the smallest
//! margin whose early decisions agree with the full-T argmax on at least a
//! target fraction of calibration samples, so the accuracy cost of early
//! exit is bounded by construction.

use serde::{Deserialize, Serialize};
use ull_data::Dataset;
use ull_snn::SnnNetwork;
use ull_tensor::Tensor;

/// Configuration for deadline-aware inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnytimeConfig {
    /// Deadline: maximum time steps to simulate.
    pub t_max: usize,
    /// Logit-margin gate: a sample commits once `top1 − top2` of its
    /// running-mean logits reaches this value. Calibrate with
    /// [`calibrate_margin`].
    pub margin: f32,
    /// Minimum steps before any sample may commit (≥ 1).
    pub min_steps: usize,
}

impl AnytimeConfig {
    /// A gate at `margin` with deadline `t_max` and no minimum beyond the
    /// first step.
    pub fn new(t_max: usize, margin: f32) -> Self {
        AnytimeConfig {
            t_max,
            margin,
            min_steps: 1,
        }
    }
}

/// Result of a deadline-aware run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnytimeOutput {
    /// Per-sample predicted class, frozen at its decision step.
    pub predictions: Vec<usize>,
    /// Per-sample step at which the prediction was frozen (1-based;
    /// `t_max` for samples that never cleared the gate).
    pub steps_used: Vec<usize>,
    /// Steps actually simulated (the last step at which some sample was
    /// still undecided; the network can stop here).
    pub steps_simulated: usize,
}

impl AnytimeOutput {
    /// Mean steps-to-decision across the batch.
    pub fn mean_steps(&self) -> f64 {
        if self.steps_used.is_empty() {
            return 0.0;
        }
        self.steps_used.iter().sum::<usize>() as f64 / self.steps_used.len() as f64
    }
}

/// Per-row top-1/top-2 margin and argmax of a `[N, classes]` tensor.
fn row_margins(logits: &Tensor) -> Vec<(usize, f32)> {
    let rows = logits.shape()[0];
    let classes = logits.len() / rows.max(1);
    let data = logits.data();
    (0..rows)
        .map(|r| {
            let row = &data[r * classes..(r + 1) * classes];
            let mut best = 0usize;
            let mut top1 = f32::NEG_INFINITY;
            let mut top2 = f32::NEG_INFINITY;
            // `>=` so ties resolve to the last index, matching
            // `Tensor::argmax_rows`.
            for (c, &v) in row.iter().enumerate() {
                if v >= top1 {
                    top2 = top1;
                    top1 = v;
                    best = c;
                } else if v > top2 {
                    top2 = v;
                }
            }
            (best, top1 - top2)
        })
        .collect()
}

/// Runs deadline-aware inference on one batch.
///
/// Simulation stops as soon as every sample has committed, so a batch
/// whose samples all clear the gate early also *costs* fewer steps.
/// Decisions freeze: a sample's prediction is whatever the running mean
/// said at its decision step, even if later steps (simulated for the
/// benefit of still-undecided samples) would have changed it.
///
/// # Panics
///
/// Panics if `cfg.t_max == 0`.
pub fn anytime_forward(snn: &SnnNetwork, x: &Tensor, cfg: &AnytimeConfig) -> AnytimeOutput {
    anytime_forward_gated(snn, x, cfg.t_max, cfg.min_steps, |_| cfg.margin)
}

/// A per-timestep margin schedule: `margins[t - 1]` is the gate a sample's
/// running-mean margin must clear to commit at step `t`.
///
/// A single global margin assumes every step's margins live on one scale.
/// They do not: converted α/β networks need several steps to charge their
/// membranes, so early steps carry few or no output spikes, and the
/// running mean divides by `t`, shrinking early margins further. A global
/// gate calibrated over all steps is dominated by last-step margins and
/// idles on the steps where exiting actually saves work (the PR-4
/// limitation). Per-step calibration gives each step a gate matched to
/// its own margin distribution: degenerate steps (no output activity yet)
/// get an infinite gate — never a bogus exit — while informative
/// intermediate steps get a gate low enough to fire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnytimeSchedule {
    /// Per-step gates, `margins[t - 1]` for step `t`; length = `t_max`.
    /// `f32::INFINITY` disables early exit at that step.
    pub margins: Vec<f32>,
    /// Minimum steps before any sample may commit (≥ 1).
    pub min_steps: usize,
}

impl AnytimeSchedule {
    /// The deadline (`t_max`) this schedule was calibrated for.
    pub fn t_max(&self) -> usize {
        self.margins.len()
    }

    /// A uniform schedule equivalent to [`AnytimeConfig`] with `margin`.
    pub fn uniform(t_max: usize, margin: f32) -> Self {
        AnytimeSchedule {
            margins: vec![margin; t_max],
            min_steps: 1,
        }
    }
}

/// Runs deadline-aware inference with a per-step margin schedule.
///
/// # Panics
///
/// Panics if `schedule.margins` is empty.
pub fn anytime_forward_scheduled(
    snn: &SnnNetwork,
    x: &Tensor,
    schedule: &AnytimeSchedule,
) -> AnytimeOutput {
    anytime_forward_gated(snn, x, schedule.t_max(), schedule.min_steps, |t| {
        schedule.margins[t - 1]
    })
}

/// Shared body of [`anytime_forward`] and [`anytime_forward_scheduled`]:
/// `gate_at(t)` supplies the margin a sample must clear at step `t`.
fn anytime_forward_gated(
    snn: &SnnNetwork,
    x: &Tensor,
    t_max: usize,
    min_steps: usize,
    gate_at: impl Fn(usize) -> f32,
) -> AnytimeOutput {
    let _span = ull_obs::span("robust.anytime.forward");
    assert!(t_max > 0, "need at least one time step");
    let batch = x.shape()[0];
    let mut predictions = vec![0usize; batch];
    let mut steps_used = vec![t_max; batch];
    let mut decided = vec![false; batch];
    let min_steps = min_steps.max(1);
    let (_, steps_simulated) = snn.forward_until(x, t_max, |t, mean| {
        let gate = gate_at(t);
        let mut undecided = 0;
        for (r, (argmax, margin)) in row_margins(mean).into_iter().enumerate() {
            if decided[r] {
                continue;
            }
            // Track the running prediction so a sample that never clears
            // the gate ends with the full-deadline answer.
            predictions[r] = argmax;
            if t >= min_steps && margin >= gate {
                decided[r] = true;
                steps_used[r] = t;
            } else {
                undecided += 1;
            }
        }
        undecided > 0 && t < t_max
    });
    ull_obs::counter_add("robust.anytime.samples", batch as u64);
    ull_obs::counter_add(
        "robust.anytime.steps_saved",
        steps_used.iter().map(|&s| (t_max - s) as u64).sum(),
    );
    AnytimeOutput {
        predictions,
        steps_used,
        steps_simulated,
    }
}

/// Calibrates the margin gate on clean data.
///
/// For every calibration sample the per-step running-mean margins and
/// argmaxes are recorded along with the full-`t_max` argmax. The returned
/// margin is the smallest observed value such that gating on it keeps
/// early decisions in agreement with the full-deadline prediction on at
/// least `target_agreement` of the samples. If no margin meets the target
/// the maximum observed margin is returned (the gate then effectively
/// disables early exit — the conservative fallback).
///
/// # Panics
///
/// Panics if `t_max == 0` or `data` has no evaluation batches.
pub fn calibrate_margin(
    snn: &SnnNetwork,
    data: &Dataset,
    t_max: usize,
    batch_size: usize,
    target_agreement: f64,
) -> f32 {
    let _span = ull_obs::span("robust.anytime.calibrate");
    let traces = collect_margin_traces(snn, data, t_max, batch_size);

    // Candidate gates: every margin observed at a step before the last —
    // gating exactly at an observed value makes that sample (and any with
    // a larger margin) exit there.
    let mut candidates: Vec<f32> = traces
        .iter()
        .flat_map(|(steps, _)| steps[..steps.len() - 1].iter().map(|&(_, m)| m))
        .filter(|m| m.is_finite())
        .collect();
    candidates.sort_by(f32::total_cmp);
    candidates.dedup();

    let agreement = |gate: f32| -> f64 {
        let agree = traces
            .iter()
            .filter(|(steps, final_pred)| {
                let decided = steps
                    .iter()
                    .find(|(_, m)| *m >= gate)
                    .map(|(p, _)| *p)
                    .unwrap_or(*final_pred);
                decided == *final_pred
            })
            .count();
        agree as f64 / traces.len() as f64
    };

    for &gate in &candidates {
        if agreement(gate) >= target_agreement {
            return gate;
        }
    }
    // Nothing met the target: disable early exit.
    candidates.last().map(|&m| m + 1.0).unwrap_or(f32::INFINITY)
}

/// Records, for every calibration sample, the per-step `(argmax, margin)`
/// of the running-mean logits plus the full-`t_max` argmax.
///
/// # Panics
///
/// Panics if `t_max == 0` or `data` has no evaluation batches.
fn collect_margin_traces(
    snn: &SnnNetwork,
    data: &Dataset,
    t_max: usize,
    batch_size: usize,
) -> Vec<(Vec<(usize, f32)>, usize)> {
    assert!(t_max > 0, "need at least one time step");
    let mut traces: Vec<(Vec<(usize, f32)>, usize)> = Vec::new();
    for batch in data.eval_batches(batch_size) {
        let rows = batch.images.shape()[0];
        let mut per_step: Vec<Vec<(usize, f32)>> = vec![Vec::with_capacity(t_max); rows];
        let (out, _) = snn.forward_until(&batch.images, t_max, |_, mean| {
            for (r, am) in row_margins(mean).into_iter().enumerate() {
                per_step[r].push(am);
            }
            true
        });
        for (r, &final_pred) in out.logits.argmax_rows().iter().enumerate() {
            traces.push((std::mem::take(&mut per_step[r]), final_pred));
        }
    }
    assert!(!traces.is_empty(), "dataset has no evaluation batches");
    traces
}

/// Calibrates a per-step margin schedule (see [`AnytimeSchedule`]).
///
/// For each step `t < t_max` the gate is the smallest margin observed at
/// that step such that, among the calibration samples whose step-`t`
/// margin clears it, the step-`t` argmax agrees with the full-deadline
/// argmax on at least `target_agreement` of them. Steps where no gate
/// meets the target — in particular steps where a converted network has
/// produced no output spikes yet, so every margin is a degenerate zero —
/// get `f32::INFINITY`: no sample exits there. The final step's gate is
/// `0.0` (the deadline commits every remaining sample regardless).
///
/// # Panics
///
/// Panics if `t_max == 0` or `data` has no evaluation batches.
pub fn calibrate_margin_schedule(
    snn: &SnnNetwork,
    data: &Dataset,
    t_max: usize,
    batch_size: usize,
    target_agreement: f64,
) -> AnytimeSchedule {
    let _span = ull_obs::span("robust.anytime.calibrate_schedule");
    let traces = collect_margin_traces(snn, data, t_max, batch_size);
    let mut margins = Vec::with_capacity(t_max);
    for step in 0..t_max.saturating_sub(1) {
        // Only strictly positive margins are meaningful gates: a zero
        // margin means the output layer has produced no discriminative
        // signal yet (e.g. no output spikes), so its argmax is a tie-break
        // artefact — never a reason to exit, even when it happens to agree
        // with the final answer on calibration data.
        let mut candidates: Vec<f32> = traces
            .iter()
            .map(|(steps, _)| steps[step].1)
            .filter(|m| m.is_finite() && *m > 0.0)
            .collect();
        candidates.sort_by(f32::total_cmp);
        candidates.dedup();
        let mut chosen = f32::INFINITY;
        for &gate in &candidates {
            let mut cleared = 0usize;
            let mut agreed = 0usize;
            for (steps, final_pred) in &traces {
                let (argmax, margin) = steps[step];
                if margin >= gate {
                    cleared += 1;
                    if argmax == *final_pred {
                        agreed += 1;
                    }
                }
            }
            if cleared > 0 && agreed as f64 / cleared as f64 >= target_agreement {
                chosen = gate;
                break;
            }
        }
        margins.push(chosen);
    }
    margins.push(0.0);
    AnytimeSchedule {
        margins,
        min_steps: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_data::{generate, SynthCifarConfig};
    use ull_nn::models;
    use ull_snn::{evaluate_snn, SpikeSpec};

    fn setup() -> (SnnNetwork, Dataset) {
        let cfg = SynthCifarConfig::tiny(3);
        let (_, test) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 23);
        let specs = vec![SpikeSpec::identity(0.5); dnn.threshold_nodes().len()];
        (SnnNetwork::from_network(&dnn, &specs).unwrap(), test)
    }

    #[test]
    fn infinite_margin_reproduces_full_deadline_predictions() {
        let (snn, data) = setup();
        let batch = data.eval_batches(16).next().unwrap();
        let cfg = AnytimeConfig::new(4, f32::INFINITY);
        let out = anytime_forward(&snn, &batch.images, &cfg);
        let full = snn.forward(&batch.images, 4);
        assert_eq!(out.predictions, full.logits.argmax_rows());
        assert!(out.steps_used.iter().all(|&s| s == 4));
        assert_eq!(out.steps_simulated, 4);
    }

    #[test]
    fn zero_margin_decides_every_sample_at_the_first_step() {
        let (snn, data) = setup();
        let batch = data.eval_batches(16).next().unwrap();
        let cfg = AnytimeConfig::new(4, 0.0);
        let out = anytime_forward(&snn, &batch.images, &cfg);
        assert!(out.steps_used.iter().all(|&s| s == 1));
        assert_eq!(out.steps_simulated, 1, "all decided — simulation must stop");
        let one_step = snn.forward(&batch.images, 1);
        assert_eq!(out.predictions, one_step.logits.argmax_rows());
    }

    #[test]
    fn min_steps_defers_decisions() {
        let (snn, data) = setup();
        let batch = data.eval_batches(8).next().unwrap();
        let cfg = AnytimeConfig {
            t_max: 4,
            margin: 0.0,
            min_steps: 3,
        };
        let out = anytime_forward(&snn, &batch.images, &cfg);
        assert!(out.steps_used.iter().all(|&s| s == 3));
    }

    #[test]
    fn calibrated_gate_meets_agreement_and_beats_the_deadline() {
        let (snn, data) = setup();
        let t_max = 5;
        let target = 0.98;
        let margin = calibrate_margin(&snn, &data, t_max, 16, target);
        assert!(margin.is_finite());
        let cfg = AnytimeConfig::new(t_max, margin);

        let (full_acc, _) = evaluate_snn(&snn, &data, t_max, 16);
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut total_steps = 0usize;
        for batch in data.eval_batches(16) {
            let out = anytime_forward(&snn, &batch.images, &cfg);
            for (pred, &label) in out.predictions.iter().zip(&batch.labels) {
                if *pred == label {
                    correct += 1;
                }
            }
            total_steps += out.steps_used.iter().sum::<usize>();
            seen += batch.labels.len();
        }
        let anytime_acc = correct as f32 / seen as f32;
        let mean_steps = total_steps as f64 / seen as f64;
        assert!(
            mean_steps < t_max as f64,
            "anytime inference saved no steps (mean {mean_steps:.2} of {t_max})"
        );
        assert!(
            (full_acc - anytime_acc).abs() <= 0.01 + f32::EPSILON,
            "anytime accuracy {anytime_acc:.4} drifted more than 1 pt from full-T {full_acc:.4}"
        );
    }

    #[test]
    fn uniform_schedule_matches_global_margin() {
        let (snn, data) = setup();
        let batch = data.eval_batches(16).next().unwrap();
        let cfg = AnytimeConfig::new(4, 0.05);
        let schedule = AnytimeSchedule::uniform(4, 0.05);
        assert_eq!(
            anytime_forward(&snn, &batch.images, &cfg),
            anytime_forward_scheduled(&snn, &batch.images, &schedule),
        );
    }

    #[test]
    fn calibrated_schedule_saves_steps_on_identity_nets() {
        let (snn, data) = setup();
        let t_max = 5;
        let schedule = calibrate_margin_schedule(&snn, &data, t_max, 16, 0.98);
        assert_eq!(schedule.t_max(), t_max);
        let (full_acc, _) = evaluate_snn(&snn, &data, t_max, 16);
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut total_steps = 0usize;
        for batch in data.eval_batches(16) {
            let out = anytime_forward_scheduled(&snn, &batch.images, &schedule);
            for (pred, &label) in out.predictions.iter().zip(&batch.labels) {
                if *pred == label {
                    correct += 1;
                }
            }
            total_steps += out.steps_used.iter().sum::<usize>();
            seen += batch.labels.len();
        }
        let acc = correct as f32 / seen as f32;
        let mean_steps = total_steps as f64 / seen as f64;
        assert!(
            mean_steps < t_max as f64,
            "schedule saved no steps (mean {mean_steps:.2} of {t_max})"
        );
        assert!(
            (full_acc - acc).abs() <= 0.01 + f32::EPSILON,
            "scheduled accuracy {acc:.4} drifted more than 1 pt from full-T {full_acc:.4}"
        );
    }

    #[test]
    fn degenerate_early_steps_get_infinite_gates() {
        // Thresholds far above what one step of input can charge: no
        // spikes reach the output before several steps, so every step-1
        // margin is a degenerate zero. The schedule must disable exit
        // there rather than committing to garbage argmaxes.
        let cfg = SynthCifarConfig::tiny(3);
        let (_, test) = generate(&cfg);
        let dnn = models::vgg_micro(3, cfg.image_size, 0.25, 31);
        let specs = vec![SpikeSpec::identity(50.0); dnn.threshold_nodes().len()];
        let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
        let schedule = calibrate_margin_schedule(&snn, &test, 4, 16, 0.95);
        assert!(
            schedule.margins[0].is_infinite(),
            "silent first step must have an infinite gate, got {:?}",
            schedule.margins
        );
        // And no sample may exit at a disabled step.
        let batch = test.eval_batches(16).next().unwrap();
        let out = anytime_forward_scheduled(&snn, &batch.images, &schedule);
        assert!(out.steps_used.iter().all(|&s| s > 1));
    }

    #[test]
    fn anytime_is_deterministic() {
        let (snn, data) = setup();
        let batch = data.eval_batches(8).next().unwrap();
        let cfg = AnytimeConfig::new(3, 0.05);
        let a = anytime_forward(&snn, &batch.images, &cfg);
        let b = anytime_forward(&snn, &batch.images, &cfg);
        assert_eq!(a, b);
    }
}
