//! Inference-time fault resilience for ultra low-latency SNNs.
//!
//! The conversion pipeline answers *"how accurate is a T≤5 SNN?"*; this
//! crate answers *"how accurate does it stay when the deployed hardware
//! misbehaves?"* — the question that matters for the neuromorphic and
//! in-memory-compute substrates the paper's energy model targets (§VI),
//! whose low-voltage operation trades energy for raised bit-error rates.
//!
//! Three pieces:
//!
//! * [`faults`] — deterministic, seeded inference-fault models applied via
//!   the non-invasive [`FaultedNetwork`] wrapper: weight/threshold
//!   bit-flips at a configurable BER, stuck-at-0 / stuck-at-saturated
//!   neurons, per-timestep spike deletion/insertion, threshold drift, and
//!   input corruption. The clean forward path is untouched — an empty
//!   fault config reproduces `SnnNetwork::forward` bit for bit, and every
//!   fault decision is a pure function of *coordinates* (seed, layer,
//!   neuron, time step, global sample index) hashed with
//!   [`ull_tensor::init::mix64`], so faulted runs are bit-identical for
//!   any `ULL_THREADS` setting.
//! * [`watchdog`] — a spike-rate watchdog: profile a per-layer activity
//!   envelope on clean evaluation data, then flag runs whose measured
//!   per-layer spike rates leave the envelope. Silent corruption (bit
//!   flips rarely crash; they just skew activity) becomes a detectable
//!   health signal.
//! * [`anytime`] — deadline-aware graceful degradation: emit a prediction
//!   after `t ≤ T` steps as soon as the running-mean logit margin clears a
//!   calibrated gate, so a latency deadline shortens inference instead of
//!   aborting it.
//!
//! [`sweep`] ties them together into the resilience-sweep harness behind
//! the `resilience_sweep` benchmark binary.
//!
//! # Example
//!
//! ```
//! use ull_nn::models;
//! use ull_robust::{FaultConfig, FaultedNetwork, InferenceFault};
//! use ull_snn::{SnnNetwork, SpikeSpec};
//! use ull_tensor::Tensor;
//!
//! let dnn = models::vgg_micro(10, 8, 0.25, 1);
//! let specs = vec![SpikeSpec::identity(1.0); dnn.threshold_nodes().len()];
//! let snn = SnnNetwork::from_network(&dnn, &specs).unwrap();
//!
//! let cfg = FaultConfig::new(7).with(InferenceFault::WeightBitFlip { ber: 1e-3 });
//! let faulted = FaultedNetwork::new(&snn, &cfg);
//! let out = faulted.forward(&Tensor::zeros(&[1, 3, 8, 8]), 2, 0);
//! assert_eq!(out.logits.shape(), &[1, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anytime;
pub mod faults;
pub mod sweep;
pub mod watchdog;

pub use anytime::{
    anytime_forward, anytime_forward_scheduled, calibrate_margin, calibrate_margin_schedule,
    AnytimeConfig, AnytimeOutput, AnytimeSchedule,
};
pub use faults::{
    evaluate_faulted, flip_dnn_weight_bits, FaultConfig, FaultedNetwork, InferenceFault,
};
pub use sweep::{resilience_sweep, DnnSweepCell, SweepCell, SweepConfig, SweepReport};
pub use watchdog::{profile_envelope, profile_envelope_batches, RateEnvelope, RateViolation};
