//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use ull_tensor::conv::{col2im, conv2d, im2col, ConvGeometry};
use ull_tensor::pool::{avgpool2d, maxpool2d};
use ull_tensor::stats::{moments, percentile, percentile_table, Histogram};
use ull_tensor::{
    conv2d_events, matmul, matmul_transpose_a, matmul_transpose_b, parallel, SpikeBatch, Tensor,
};

/// Expands a draw of small integers into a uniform-amplitude spike
/// tensor: roughly one element in five carries `amp`, the rest are zero.
fn to_dense(mask: &[u8], amp: f32, shape: &[usize]) -> Tensor {
    let vals: Vec<f32> = mask
        .iter()
        .map(|&v| if v < 2 { amp } else { 0.0 })
        .collect();
    Tensor::from_vec(vals, shape).unwrap()
}

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in proptest::collection::vec(-2.0f32..2.0, 12),
        b in proptest::collection::vec(-2.0f32..2.0, 12),
        c in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        // A(B + C) == AB + AC for 3x4 * 4x3.
        let a = Tensor::from_vec(a, &[3, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 3]).unwrap();
        let c = Tensor::from_vec(c, &[4, 3]).unwrap();
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_transposes_are_consistent(
        a in proptest::collection::vec(-2.0f32..2.0, 8),
        b in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        // (AB)^T == B^T A^T, exercised through all three kernels.
        let a = Tensor::from_vec(a, &[2, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 3]).unwrap();
        let ab_t = matmul(&a, &b).transpose();
        let bt_at = matmul(&b.transpose(), &a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        // Same result via the fused kernels.
        let via_ta = matmul_transpose_a(&a.transpose(), &b);
        let via_tb = matmul_transpose_b(&a, &b.transpose());
        for (x, y) in via_ta.data().iter().zip(via_tb.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_is_linear_in_input(
        x1 in proptest::collection::vec(-2.0f32..2.0, 32),
        x2 in proptest::collection::vec(-2.0f32..2.0, 32),
        w in proptest::collection::vec(-1.0f32..1.0, 18),
    ) {
        let geo = ConvGeometry::square(3, 1, 1);
        let x1 = Tensor::from_vec(x1, &[1, 2, 4, 4]).unwrap();
        let x2 = Tensor::from_vec(x2, &[1, 2, 4, 4]).unwrap();
        let w = Tensor::from_vec(w, &[1, 2, 3, 3]).unwrap();
        let sum = conv2d(&x1.add(&x2), &w, None, geo);
        let parts = conv2d(&x1, &w, None, geo).add(&conv2d(&x2, &w, None, geo));
        for (a, b) in sum.data().iter().zip(parts.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn maxpool_dominates_avgpool(x in proptest::collection::vec(-5.0f32..5.0, 16)) {
        let t = Tensor::from_vec(x, &[1, 1, 4, 4]).unwrap();
        let mx = maxpool2d(&t, 2).output;
        let av = avgpool2d(&t, 2);
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn maxpool_output_is_subset_of_input(x in proptest::collection::vec(-5.0f32..5.0, 16)) {
        let t = Tensor::from_vec(x.clone(), &[1, 1, 4, 4]).unwrap();
        let mx = maxpool2d(&t, 2);
        for &v in mx.output.data() {
            prop_assert!(x.contains(&v));
        }
        // argmax indices point at the winning values.
        for (i, &arg) in mx.argmax.iter().enumerate() {
            prop_assert_eq!(x[arg], mx.output.data()[i]);
        }
    }

    #[test]
    fn moments_are_translation_equivariant(
        x in tensor_strategy(64),
        shift in -5.0f32..5.0,
    ) {
        let m0 = moments(&x);
        let shifted: Vec<f32> = x.iter().map(|v| v + shift).collect();
        let m1 = moments(&shifted);
        prop_assert!((m1.mean - (m0.mean + shift)).abs() < 1e-3);
        prop_assert!((m1.std - m0.std).abs() < 1e-3);
    }

    #[test]
    fn percentile_brackets_values(x in tensor_strategy(64), q in 0.0f32..100.0) {
        let p = percentile(&x, q);
        let min = x.iter().copied().fold(f32::INFINITY, f32::min);
        let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(p >= min && p <= max);
    }

    #[test]
    fn histogram_total_matches_records(x in tensor_strategy(128)) {
        let mut h = Histogram::new(-10.0, 10.0, 16);
        h.record_all(&x);
        prop_assert_eq!(h.total as usize, x.len());
        let counted: u64 = h.counts.iter().sum();
        prop_assert_eq!(counted, h.total);
    }

    #[test]
    fn percentile_table_is_monotone(x in tensor_strategy(128)) {
        let table = percentile_table(&x);
        prop_assert_eq!(table.len(), 101);
        for w in table.windows(2) {
            prop_assert!(w[0] <= w[1], "table not monotone: {} > {}", w[0], w[1]);
        }
        let min = x.iter().copied().fold(f32::INFINITY, f32::min);
        let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(table[0], min);
        prop_assert_eq!(table[100], max);
    }

    #[test]
    fn histogram_cdf_tracks_empirical_cdf(x in tensor_strategy(128), q in -10.0f32..10.0) {
        let mut h = Histogram::new(-10.0, 10.0, 16);
        h.record_all(&x);
        let empirical = x.iter().filter(|&&v| v < q).count() as f32 / x.len() as f32;
        // Values in fully-counted bins are exactly below q; only the bin
        // containing q is linearly interpolated, so the histogram CDF can
        // deviate from the empirical one by at most that bin's mass.
        let pos = (q - h.lo) / h.bin_width();
        let bin = (pos.floor().max(0.0) as usize).min(h.counts.len() - 1);
        let tol = h.counts[bin] as f32 / h.total as f32 + 1e-4;
        prop_assert!(
            (h.cdf(q) - empirical).abs() <= tol,
            "cdf {} vs empirical {} (tol {})", h.cdf(q), empirical, tol
        );
    }

    #[test]
    fn matmul_kernels_are_thread_count_invariant(
        data in proptest::collection::vec(-3.0f32..3.0, 64),
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
    ) {
        let a = Tensor::from_vec(data[..m * k].to_vec(), &[m, k]).unwrap();
        let b = Tensor::from_vec(data[25..25 + k * n].to_vec(), &[k, n]).unwrap();
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        let base = matmul(&a, &b);
        let base_ta = matmul_transpose_a(&a.transpose(), &b);
        let base_tb = matmul_transpose_b(&a, &b.transpose());
        for threads in [2, 3, 4] {
            parallel::set_threads(threads);
            // Exact equality: partitioning must not change float order.
            prop_assert_eq!(&matmul(&a, &b), &base, "threads {}", threads);
            prop_assert_eq!(&matmul_transpose_a(&a.transpose(), &b), &base_ta, "threads {}", threads);
            prop_assert_eq!(&matmul_transpose_b(&a, &b.transpose()), &base_tb, "threads {}", threads);
        }
        parallel::set_threads(0);
    }

    #[test]
    fn conv_kernels_are_thread_count_invariant(
        x in proptest::collection::vec(-2.0f32..2.0, 3 * 2 * 6 * 6),
        w in proptest::collection::vec(-1.0f32..1.0, 3 * 2 * 3 * 3),
    ) {
        let geo = ConvGeometry::square(3, 1, 1);
        let x = Tensor::from_vec(x, &[3, 2, 6, 6]).unwrap();
        let w = Tensor::from_vec(w, &[3, 2, 3, 3]).unwrap();
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        let base = conv2d(&x, &w, None, geo);
        let base_cols = im2col(&x, geo);
        let base_im = col2im(&base_cols, 3, 2, 6, 6, geo);
        for threads in [2, 3, 4] {
            parallel::set_threads(threads);
            prop_assert_eq!(&conv2d(&x, &w, None, geo), &base, "threads {}", threads);
            let cols = im2col(&x, geo);
            prop_assert_eq!(&cols, &base_cols, "threads {}", threads);
            prop_assert_eq!(&col2im(&cols, 3, 2, 6, 6, geo), &base_im, "threads {}", threads);
        }
        parallel::set_threads(0);
    }

    #[test]
    fn softmax_is_shift_invariant(x in proptest::collection::vec(-5.0f32..5.0, 6), c in -10.0f32..10.0) {
        let t = Tensor::from_vec(x.clone(), &[2, 3]).unwrap();
        let shifted = t.add_scalar(c);
        let s1 = t.softmax_rows();
        let s2 = shifted.softmax_rows();
        for (a, b) in s1.data().iter().zip(s2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn clip_is_idempotent_and_bounded(x in tensor_strategy(32), hi in 0.1f32..5.0) {
        let t = Tensor::from_slice(&x);
        let c1 = t.clip(0.0, hi);
        let c2 = c1.clip(0.0, hi);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(c1.data().iter().all(|&v| (0.0..=hi).contains(&v)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_events_match_dense_conv_bitwise(
        mask in proptest::collection::vec(0u8..10, 150),
        amp in 0.1f32..3.0,
        w in proptest::collection::vec(-1.0f32..1.0, 108),
        b in proptest::collection::vec(-0.5f32..0.5, 4),
        stride in 1usize..3,
        padding in 0usize..3,
    ) {
        // The event-driven kernel replays the im2col+GEMM accumulation
        // order, so any geometry and any spike pattern must reproduce the
        // dense result bit for bit, at every thread count.
        let geo = ConvGeometry::square(3, stride, padding);
        let x = to_dense(&mask, amp, &[2, 3, 5, 5]);
        let w = Tensor::from_vec(w, &[4, 3, 3, 3]).unwrap();
        let bias = Tensor::from_vec(b, &[4]).unwrap();
        let ev = SpikeBatch::from_dense(&x).expect("uniform by construction");
        let _guard = parallel::override_lock();
        for threads in [1usize, 3] {
            parallel::set_threads(threads);
            let dense = conv2d(&x, &w, Some(&bias), geo);
            let mut sparse = Tensor::default();
            conv2d_events(&ev, &w, Some(&bias), geo, &mut sparse);
            prop_assert_eq!(sparse.shape(), dense.shape());
            for (s, d) in sparse.data().iter().zip(dense.data()) {
                prop_assert_eq!(s.to_bits(), d.to_bits(), "threads {}", threads);
            }
        }
        parallel::set_threads(0);
    }

    #[test]
    fn matmul_events_match_dense_matmul_bitwise(
        mask in proptest::collection::vec(0u8..10, 36),
        amp in 0.1f32..3.0,
        w in proptest::collection::vec(-1.0f32..1.0, 60),
    ) {
        let x = to_dense(&mask, amp, &[3, 12]);
        let w = Tensor::from_vec(w, &[5, 12]).unwrap();
        let ev = SpikeBatch::from_dense(&x).expect("uniform by construction");
        let _guard = parallel::override_lock();
        for threads in [1usize, 3] {
            parallel::set_threads(threads);
            let dense = matmul_transpose_b(&x, &w);
            let mut sparse = Tensor::default();
            ull_tensor::matmul_tb_events(&ev, &w, &mut sparse);
            prop_assert_eq!(sparse.shape(), dense.shape());
            for (s, d) in sparse.data().iter().zip(dense.data()) {
                prop_assert_eq!(s.to_bits(), d.to_bits(), "threads {}", threads);
            }
        }
        parallel::set_threads(0);
    }

    #[test]
    fn spike_batch_round_trips_any_uniform_tensor(
        mask in proptest::collection::vec(0u8..10, 36),
        amp in 0.1f32..3.0,
    ) {
        let x = to_dense(&mask, amp, &[4, 9]);
        let ev = SpikeBatch::from_dense(&x).expect("uniform by construction");
        prop_assert_eq!(&ev.to_dense(), &x);
        let nnz = mask.iter().filter(|&&v| v < 2).count();
        prop_assert_eq!(ev.nnz(), nnz);
        let density = nnz as f32 / mask.len() as f32;
        prop_assert!((ev.density() - density).abs() < 1e-6);
    }
}
