//! Differential harness for the packed weight-stationary kernels.
//!
//! Fuzzes shapes × sparsity × `ULL_THREADS` {1, 4} × packed/unpacked and
//! asserts *byte* equality — the same correctness discipline the event
//! kernels use. Deterministic cases pin the panel/tile boundary shapes
//! (n ∈ {1, 7, 8, 9, 16, 17}, m across the 4-row tile) that fuzzing may
//! skip over.

use proptest::prelude::*;
use ull_tensor::conv::{conv2d, conv2d_packed_into, ConvGeometry, ConvScratch};
use ull_tensor::{
    matmul, matmul_packed, matmul_tb_packed, matmul_transpose_b, parallel, PackedWeights, Tensor,
};

fn assert_bits_eq(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

/// Zeroes out all but roughly one in `keep_one_in` entries — the
/// uniform-amplitude spike matrices of the SNN hot path.
fn sparsify(t: &mut Tensor, keep_one_in: usize, amp: f32) {
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = if (i * 2654435761) % keep_one_in == 0 {
            amp
        } else {
            0.0
        };
    }
}

/// Every panel/tile boundary shape, dense and spike-sparse lhs, across
/// thread counts — the deterministic backbone of the harness.
#[test]
fn panel_and_tile_boundaries_bitwise_across_threads() {
    let _guard = parallel::override_lock();
    for n in [1usize, 7, 8, 9, 16, 17] {
        for m in [1usize, 3, 4, 5, 8, 9] {
            let k = 6 + (m + n) % 5;
            let mut a = rand_tensor(&[m, k], (m * 131 + n) as u64);
            let bt = rand_tensor(&[n, k], (m * 17 + n * 3) as u64);
            let b = rand_tensor(&[k, n], (m * 29 + n * 7) as u64);
            let packed_t = PackedWeights::pack_rhs_t(&bt);
            let packed = PackedWeights::pack_rhs(&b);
            for sparse in [false, true] {
                if sparse {
                    sparsify(&mut a, 4, 0.75);
                }
                parallel::set_threads(1);
                let want_tb = matmul_transpose_b(&a, &bt);
                let want = matmul(&a, &b);
                for threads in [1usize, 4] {
                    parallel::set_threads(threads);
                    let ctx = format!("m={m} n={n} k={k} sparse={sparse} threads={threads}");
                    assert_bits_eq(&matmul_tb_packed(&a, &packed_t), &want_tb, &ctx);
                    assert_bits_eq(&matmul_packed(&a, &packed), &want, &ctx);
                }
            }
        }
    }
    parallel::set_threads(0);
}

#[test]
fn packed_conv_boundaries_bitwise_across_threads() {
    let _guard = parallel::override_lock();
    let mut scratch = ConvScratch::default();
    let mut got = Tensor::default();
    for f in [1usize, 7, 8, 9] {
        let x = rand_tensor(&[2, 3, 6, 6], f as u64 + 40);
        let w = rand_tensor(&[f, 3, 3, 3], f as u64 + 50);
        let bias = rand_tensor(&[f], f as u64 + 60);
        let packed = PackedWeights::pack_conv(&w);
        for geo in [ConvGeometry::square(3, 1, 1), ConvGeometry::square(3, 2, 0)] {
            parallel::set_threads(1);
            let want = conv2d(&x, &w, Some(&bias), geo);
            for threads in [1usize, 4] {
                parallel::set_threads(threads);
                conv2d_packed_into(&x, &packed, Some(&bias), geo, &mut scratch, &mut got);
                assert_bits_eq(&got, &want, &format!("f={f} threads={threads}"));
            }
        }
    }
    parallel::set_threads(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes × random data: `A · Bᵀ` packed == unpacked, bitwise,
    /// at `ULL_THREADS` 1 and 4.
    #[test]
    fn fuzz_matmul_tb_packed_bitwise(
        data in proptest::collection::vec(-3.0f32..3.0, 64),
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..11,
    ) {
        let a = Tensor::from_vec(data[..m * k].to_vec(), &[m, k]).unwrap();
        let bt = Tensor::from_vec(data[64 - n * k..].to_vec(), &[n, k]).unwrap();
        let packed = PackedWeights::pack_rhs_t(&bt);
        let _guard = parallel::override_lock();
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            let want = matmul_transpose_b(&a, &bt);
            let got = matmul_tb_packed(&a, &packed);
            prop_assert_eq!(got.shape(), want.shape());
            for (g, w) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads {}: {} vs {}", threads, g, w);
            }
        }
        parallel::set_threads(0);
    }

    /// Spike-sparse lhs (uniform amplitude, ~1-in-5 active): the zero-skip
    /// paths of both kernels must drop exactly the same terms.
    #[test]
    fn fuzz_sparse_lhs_packed_bitwise(
        mask in proptest::collection::vec(0u8..10, 30),
        w in proptest::collection::vec(-2.0f32..2.0, 60),
        amp in 0.25f32..2.0,
        density in 1u8..9,
    ) {
        let vals: Vec<f32> = mask.iter().map(|&v| if v < density { amp } else { 0.0 }).collect();
        let a = Tensor::from_vec(vals, &[5, 6]).unwrap();
        let bt = Tensor::from_vec(w, &[10, 6]).unwrap();
        let packed = PackedWeights::pack_rhs_t(&bt);
        let _guard = parallel::override_lock();
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            let want = matmul_transpose_b(&a, &bt);
            let got = matmul_tb_packed(&a, &packed);
            for (g, wv) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), wv.to_bits(), "threads {}", threads);
            }
        }
        parallel::set_threads(0);
    }

    /// Random conv shapes: packed conv == unpacked conv, bitwise, with and
    /// without bias, across thread counts.
    #[test]
    fn fuzz_conv_packed_bitwise(
        x in proptest::collection::vec(-2.0f32..2.0, 96),
        w in proptest::collection::vec(-1.0f32..1.0, 54),
        bias in proptest::collection::vec(-1.0f32..1.0, 3),
        with_bias_bit in 0u8..2,
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let geo = ConvGeometry::square(3, stride, padding);
        let x = Tensor::from_vec(x, &[2, 3, 4, 4]).unwrap();
        let w = Tensor::from_vec(w, &[2, 3, 3, 3]).unwrap();
        let bias = Tensor::from_vec(bias[..2].to_vec(), &[2]).unwrap();
        let b = (with_bias_bit == 1).then_some(&bias);
        let packed = PackedWeights::pack_conv(&w);
        let mut scratch = ConvScratch::default();
        let mut got = Tensor::default();
        let _guard = parallel::override_lock();
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            let want = conv2d(&x, &w, b, geo);
            conv2d_packed_into(&x, &packed, b, geo, &mut scratch, &mut got);
            prop_assert_eq!(got.shape(), want.shape());
            for (g, e) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), e.to_bits(), "threads {}", threads);
            }
        }
        parallel::set_threads(0);
    }

    /// `C = A · B` orientation: packed == unpacked, bitwise.
    #[test]
    fn fuzz_matmul_packed_bitwise(
        data in proptest::collection::vec(-3.0f32..3.0, 60),
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..10,
    ) {
        let a = Tensor::from_vec(data[..m * k].to_vec(), &[m, k]).unwrap();
        let b = Tensor::from_vec(data[60 - k * n..].to_vec(), &[k, n]).unwrap();
        let packed = PackedWeights::pack_rhs(&b);
        let _guard = parallel::override_lock();
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            let want = matmul(&a, &b);
            let got = matmul_packed(&a, &packed);
            for (g, w) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads {}", threads);
            }
        }
        parallel::set_threads(0);
    }
}
