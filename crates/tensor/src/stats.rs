//! Statistics over activation values.
//!
//! The conversion algorithm (paper §III-B, Algorithm 1) is driven entirely by
//! *empirical* statistics of DNN pre-activations: percentiles `P[0..=M]`
//! define the candidate α grid, and histograms/densities estimate the
//! pre-activation pdfs `f_D(d)` and `f_S(s)` used by the error model
//! (Eq. 6/7). This module provides those estimators.

use serde::{Deserialize, Serialize};

/// Summary moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
}

/// Computes [`Moments`] of a sample; all fields are 0 for an empty slice.
pub fn moments(values: &[f32]) -> Moments {
    if values.is_empty() {
        return Moments {
            count: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    Moments {
        count: values.len(),
        mean,
        std: var.sqrt(),
        min: values.iter().copied().fold(f32::INFINITY, f32::min),
        max: values.iter().copied().fold(f32::NEG_INFINITY, f32::max),
    }
}

/// The `q`-th percentile (0..=100) of `values` with linear interpolation,
/// matching the convention of NumPy's default.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 100]`.
pub fn percentile(values: &[f32], q: f32) -> f32 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile q={q} outside [0, 100]"
    );
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, q)
}

/// [`percentile`] on data that is already sorted ascending (no copy).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f32], q: f32) -> f32 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile q={q} outside [0, 100]"
    );
    let rank = q / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The integer percentiles `P[0], P[1], …, P[100]` of a sample, sorted once.
///
/// Algorithm 1 indexes this table to build its candidate α grid.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile_table(values: &[f32]) -> Vec<f32> {
    assert!(!values.is_empty(), "percentile table of empty sample");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (0..=100)
        .map(|i| percentile_sorted(&sorted, i as f32))
        .collect()
}

/// A fixed-range histogram used as a density estimate of pre-activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f32,
    /// Exclusive upper edge of the last bin (values above are clamped in).
    pub hi: f32,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Total number of samples accumulated.
    pub total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo {lo}, hi {hi})"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f32 {
        (self.hi - self.lo) / self.counts.len() as f32
    }

    /// Index of the bin that owns `value`.
    ///
    /// Bins are half-open `[edge_i, edge_{i+1})` except the last, which is
    /// closed: `value == hi` (and anything beyond) lands in the final bin,
    /// mirroring how `value < lo` clamps to bin 0. This keeps every
    /// recorded sample inside the histogram rather than silently dropping
    /// the exact upper edge.
    fn bin_index(&self, value: f32) -> usize {
        let b = ((value - self.lo) / self.bin_width()).floor();
        (b.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Accumulates one value; out-of-range values clamp to the edge bins
    /// (see [`Histogram::bin_index`] for the exact edge convention).
    pub fn record(&mut self, value: f32) {
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Accumulates every value of a slice.
    pub fn record_all(&mut self, values: &[f32]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Probability density estimate at bin centres: counts normalised so the
    /// histogram integrates to 1. Empty histogram returns zeros.
    pub fn density(&self) -> Vec<f32> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f32 * self.bin_width());
        self.counts.iter().map(|&c| c as f32 * norm).collect()
    }

    /// Fraction of recorded samples with value `< x` (piecewise-linear CDF).
    pub fn cdf(&self, x: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let pos = (x - self.lo) / self.bin_width();
        let full = (pos.floor() as usize).min(self.counts.len() - 1);
        let frac = pos - full as f32;
        let whole: u64 = self.counts[..full].iter().sum();
        let partial = self.counts[full] as f32 * frac;
        (whole as f32 + partial) / self.total as f32
    }

    /// Probability mass in `[a, b)` according to the piecewise-linear CDF.
    pub fn mass(&self, a: f32, b: f32) -> f32 {
        (self.cdf(b) - self.cdf(a)).max(0.0)
    }
}

/// Measures how skewed a non-negative sample is: the fraction of mass that
/// lies below `frac * max`. The paper observes >99 % of pre-activations lie
/// in `[0, d_max/3]` — this statistic quantifies that claim.
pub fn mass_below_fraction_of_max(values: &[f32], frac: f32) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let cut = max * frac;
    values.iter().filter(|&&v| v <= cut).count() as f32 / values.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sample() {
        let m = moments(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.count, 4);
        assert!((m.mean - 2.5).abs() < 1e-6);
        assert!((m.std - (1.25f32).sqrt()).abs() < 1e-6);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
    }

    #[test]
    fn moments_empty() {
        let m = moments(&[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.mean, 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-6);
        assert!((percentile(&v, 75.0) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn percentile_table_is_monotone() {
        let v: Vec<f32> = (0..1000).map(|i| ((i * 37) % 991) as f32 * 0.01).collect();
        let table = percentile_table(&v);
        assert_eq!(table.len(), 101);
        for w in table.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record_all(&[0.05, 0.15, 0.15, 0.95, 0.5]);
        let total: f32 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(7.0);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.total, 2);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut h = Histogram::new(0.0, 2.0, 20);
        h.record_all(&[0.1, 0.2, 0.3, 1.5, 1.9, 0.05, 0.06]);
        let mut prev = -1.0;
        for i in 0..=40 {
            let x = i as f32 * 0.05;
            let c = h.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(3.0), 1.0);
    }

    #[test]
    fn record_edge_convention() {
        // value == hi lands in the last (closed) bin; value < lo clamps to
        // bin 0; values beyond hi clamp to the last bin. Nothing recorded
        // is ever dropped.
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0); // exact upper edge
        h.record(5.0); // beyond hi
        h.record(-3.0); // below lo
        h.record(0.25); // interior: second bin ([0.25, 0.5))
        assert_eq!(h.counts, vec![1, 1, 0, 2]);
        assert_eq!(h.total, 4);
    }

    #[test]
    fn mass_of_interval() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        // All mass in [0.0, 0.1).
        for _ in 0..100 {
            h.record(0.05);
        }
        assert!((h.mass(0.0, 0.1) - 1.0).abs() < 1e-5);
        assert!(h.mass(0.5, 1.0) < 1e-6);
    }

    #[test]
    fn skew_statistic_detects_concentration() {
        // Exponential-ish sample concentrated near zero.
        let vals: Vec<f32> = (0..1000)
            .map(|i| (-(i as f32) / 100.0).exp() * 3.0)
            .collect();
        let s = mass_below_fraction_of_max(&vals, 1.0 / 3.0);
        assert!(s > 0.85, "expected heavy concentration, got {s}");
        // Uniform sample is not concentrated.
        let unif: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        let u = mass_below_fraction_of_max(&unif, 1.0 / 3.0);
        assert!((u - 0.334).abs() < 0.01, "uniform: got {u}");
    }
}
