//! Deterministic, seeded weight initialisation.
//!
//! Every random draw in the workspace flows through a seeded
//! [`rand::rngs::StdRng`] so the full experiment suite is reproducible
//! run-to-run, which EXPERIMENTS.md relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// Creates a seeded RNG. Thin wrapper so downstream crates never construct
/// RNGs ad hoc with entropy.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("uniform init length by construction")
}

/// Tensor with elements drawn from `N(mean, std²)` (Box–Muller).
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * th.cos());
        if data.len() < n {
            data.push(mean + std * r * th.sin());
        }
    }
    Tensor::from_vec(data, shape).expect("normal init length by construction")
}

/// Kaiming (He) normal initialisation for ReLU-family networks:
/// `std = sqrt(2 / fan_in)`.
///
/// For convolution weights `[F, C, KH, KW]`, `fan_in = C·KH·KW`; for linear
/// weights `[out, in]`, `fan_in = in`.
///
/// # Panics
///
/// Panics if `shape` has fewer than 2 axes.
pub fn kaiming_normal(shape: &[usize], rng: &mut StdRng) -> Tensor {
    assert!(shape.len() >= 2, "kaiming init needs a weight-like shape");
    let fan_in: usize = shape[1..].iter().product();
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `shape` has fewer than 2 axes.
pub fn xavier_uniform(shape: &[usize], rng: &mut StdRng) -> Tensor {
    assert!(shape.len() >= 2, "xavier init needs a weight-like shape");
    let fan_out: usize = shape[0] * shape[2..].iter().product::<usize>();
    let fan_in: usize = shape[1..].iter().product();
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// Stateless counter-based hash: folds `words` into `seed` with a
/// SplitMix64 finalizer per word. Unlike a sequential RNG stream, the
/// result depends only on the *coordinates* hashed — not on how many draws
/// happened before — so decisions derived from it (fault triggers, per-
/// neuron masks) are identical for any batch chunking or thread count.
pub fn mix64(seed: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for &w in words {
        h = splitmix64(h ^ w.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    }
    h
}

/// Maps a hash to a uniform `f32` in `[0, 1)` (24 high bits → mantissa).
pub fn unit_f32(h: u64) -> f32 {
    ((h >> 40) as f32) / (1u64 << 24) as f32
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::moments;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&[100], 0.0, 1.0, &mut seeded_rng(42));
        let b = uniform(&[100], 0.0, 1.0, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = uniform(&[100], 0.0, 1.0, &mut seeded_rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&[1000], -0.5, 0.5, &mut seeded_rng(1));
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_has_requested_moments() {
        let t = normal(&[20000], 1.0, 2.0, &mut seeded_rng(7));
        let m = moments(t.data());
        assert!((m.mean - 1.0).abs() < 0.05, "mean {}", m.mean);
        assert!((m.std - 2.0).abs() < 0.05, "std {}", m.std);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let w = kaiming_normal(&[64, 32, 3, 3], &mut seeded_rng(3));
        let m = moments(w.data());
        let expected = (2.0f32 / (32.0 * 9.0)).sqrt();
        assert!(
            (m.std - expected).abs() < 0.01,
            "std {} vs {expected}",
            m.std
        );
    }

    #[test]
    fn xavier_respects_symmetric_bound() {
        let w = xavier_uniform(&[10, 20], &mut seeded_rng(5));
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn odd_length_normal_fills_exactly() {
        let t = normal(&[7], 0.0, 1.0, &mut seeded_rng(9));
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn mix64_depends_on_every_coordinate() {
        let base = mix64(1, &[2, 3, 4]);
        assert_eq!(base, mix64(1, &[2, 3, 4]));
        assert_ne!(base, mix64(2, &[2, 3, 4]));
        assert_ne!(base, mix64(1, &[2, 3, 5]));
        assert_ne!(base, mix64(1, &[3, 2, 4]), "order must matter");
        assert_ne!(base, mix64(1, &[2, 3]));
    }

    #[test]
    fn unit_f32_is_uniform_enough() {
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| unit_f32(mix64(7, &[i])) as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for i in 0..n {
            let u = unit_f32(mix64(7, &[i]));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
