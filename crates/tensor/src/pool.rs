//! Max and average pooling with backward passes.
//!
//! The paper deliberately keeps **max pooling** in the SNN (§IV-A): on
//! binary spike inputs the max over a window is itself binary, so every
//! hidden layer keeps emitting spikes and the network stays accumulate-only.
//! [`maxpool2d`] returns the argmax index map required both for the backward
//! pass and for verifying that binary-input ⇒ binary-output invariant.

use crate::Tensor;

/// Result of a max-pooling forward pass: outputs plus argmax indices.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of the
    /// element that won the max. Used by [`maxpool2d_backward`].
    pub argmax: Vec<usize>,
}

/// Max pooling over `k × k` windows with stride `k` (the paper's usage).
///
/// Returns the pooled tensor and the winning input index per output cell.
///
/// # Panics
///
/// Panics if `input` is not rank 4, `k` is 0, or the spatial dims are not
/// divisible by `k`.
pub fn maxpool2d(input: &Tensor, k: usize) -> MaxPoolOutput {
    let [n, c, h, w] = dims4(input);
    assert!(k > 0, "pooling window must be positive");
    assert!(
        h % k == 0 && w % k == 0,
        "maxpool2d: input {h}x{w} not divisible by window {k}"
    );
    let (oh, ow) = (h / k, w / k);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            let oplane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = plane + oy * k * w + ox * k;
                    for ky in 0..k {
                        let row = plane + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            let v = data[row + kx];
                            if v > best {
                                best = v;
                                best_idx = row + kx;
                            }
                        }
                    }
                    out[oplane + oy * ow + ox] = best;
                    arg[oplane + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, oh, ow]).expect("maxpool output length"),
        argmax: arg,
    }
}

/// Eval-only [`maxpool2d`] writing into a caller-owned output tensor
/// (resized in place) and skipping the argmax map — the SNN inference loop
/// never needs it, and dropping it makes the step workspace allocation-free.
/// Output values are bit-identical to [`maxpool2d`].
///
/// # Panics
///
/// Same conditions as [`maxpool2d`].
pub fn maxpool2d_into(input: &Tensor, k: usize, out: &mut Tensor) {
    let [n, c, h, w] = dims4(input);
    assert!(k > 0, "pooling window must be positive");
    assert!(
        h % k == 0 && w % k == 0,
        "maxpool2d: input {h}x{w} not divisible by window {k}"
    );
    let (oh, ow) = (h / k, w / k);
    out.reset_shaped(&[n, c, oh, ow]);
    let od = out.data_mut();
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            let oplane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k {
                        let row = plane + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            let v = data[row + kx];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    od[oplane + oy * ow + ox] = best;
                }
            }
        }
    }
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the input
/// element that won the max.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "maxpool2d_backward: grad/argmax length mismatch"
    );
    let mut dx = Tensor::zeros(input_shape);
    let dd = dx.data_mut();
    for (&g, &i) in grad_out.data().iter().zip(argmax) {
        dd[i] += g;
    }
    dx
}

/// Average pooling over `k × k` windows with stride `k`.
///
/// # Panics
///
/// Panics if `input` is not rank 4, `k` is 0, or the spatial dims are not
/// divisible by `k`.
pub fn avgpool2d(input: &Tensor, k: usize) -> Tensor {
    let [n, c, h, w] = dims4(input);
    assert!(k > 0, "pooling window must be positive");
    assert!(
        h % k == 0 && w % k == 0,
        "avgpool2d: input {h}x{w} not divisible by window {k}"
    );
    let (oh, ow) = (h / k, w / k);
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            let oplane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let row = plane + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            acc += data[row + kx];
                        }
                    }
                    out[oplane + oy * ow + ox] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow]).expect("avgpool output length")
}

/// [`avgpool2d`] writing into a caller-owned output tensor (resized in
/// place, allocation-free at steady state). Bit-identical to [`avgpool2d`].
///
/// # Panics
///
/// Same conditions as [`avgpool2d`].
pub fn avgpool2d_into(input: &Tensor, k: usize, out: &mut Tensor) {
    let [n, c, h, w] = dims4(input);
    assert!(k > 0, "pooling window must be positive");
    assert!(
        h % k == 0 && w % k == 0,
        "avgpool2d: input {h}x{w} not divisible by window {k}"
    );
    let (oh, ow) = (h / k, w / k);
    let inv = 1.0 / (k * k) as f32;
    out.reset_shaped(&[n, c, oh, ow]);
    let od = out.data_mut();
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            let oplane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let row = plane + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            acc += data[row + kx];
                        }
                    }
                    od[oplane + oy * ow + ox] = acc * inv;
                }
            }
        }
    }
}

/// Backward pass of [`avgpool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Panics
///
/// Panics if shapes are inconsistent with an average pool of window `k`.
pub fn avgpool2d_backward(grad_out: &Tensor, input_shape: &[usize], k: usize) -> Tensor {
    let [n, c, h, w] = [
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    ];
    let (oh, ow) = (h / k, w / k);
    assert_eq!(
        grad_out.shape(),
        &[n, c, oh, ow],
        "avgpool2d_backward: grad_out shape mismatch"
    );
    let inv = 1.0 / (k * k) as f32;
    let mut dx = Tensor::zeros(input_shape);
    let dd = dx.data_mut();
    let gd = grad_out.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            let oplane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[oplane + oy * ow + ox] * inv;
                    for ky in 0..k {
                        let row = plane + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            dd[row + kx] += g;
                        }
                    }
                }
            }
        }
    }
    dx
}

fn dims4(t: &Tensor) -> [usize; 4] {
    assert_eq!(
        t.rank(),
        4,
        "pooling expects rank-4 input, got {:?}",
        t.shape()
    );
    [t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.125,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d(&x, 2);
        assert_eq!(p.output.shape(), &[1, 1, 2, 2]);
        assert_eq!(p.output.data(), &[4.0, 8.0, -1.0, 0.5]);
    }

    #[test]
    fn maxpool_binary_in_binary_out() {
        // The invariant the paper relies on (§IV-A): spikes in ⇒ spikes out.
        let x = Tensor::from_vec(
            vec![
                0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d(&x, 2);
        assert!(p.output.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let p = maxpool2d(&x, 2);
        let go = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let dx = maxpool2d_backward(&go, &p.argmax, x.shape());
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool_backward_finite_difference() {
        let x = Tensor::from_vec(
            (0..16)
                .map(|i| ((i * 7919) % 13) as f32 * 0.3 - 1.0)
                .collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d(&x, 2);
        let go = Tensor::ones(p.output.shape());
        let dx = maxpool2d_backward(&go, &p.argmax, x.shape());
        let eps = 1e-3;
        for i in 0..16 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd =
                (maxpool2d(&xp, 2).output.sum() - maxpool2d(&xm, 2).output.sum()) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 1e-2,
                "i={i}: fd {fd} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = avgpool2d(&x, 2);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let go = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let dx = avgpool2d_backward(&go, &[1, 1, 2, 2], 2);
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avgpool_for_resnet_head() {
        // ResNet-20 ends with a global average pool; window == spatial size.
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = avgpool2d(&x, 4);
        assert_eq!(y.shape(), &[2, 3, 1, 1]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let x = Tensor::from_vec(
            (0..64)
                .map(|i| ((i * 2654435761usize) % 17) as f32 * 0.25 - 2.0)
                .collect(),
            &[2, 2, 4, 4],
        )
        .unwrap();
        let mut out = Tensor::zeros(&[5]);
        maxpool2d_into(&x, 2, &mut out);
        assert_eq!(out, maxpool2d(&x, 2).output);
        avgpool2d_into(&x, 2, &mut out);
        assert_eq!(out, avgpool2d(&x, 2));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_window_panics() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let _ = maxpool2d(&x, 2);
    }
}
