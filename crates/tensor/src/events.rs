//! Event-driven sparse kernels over compact spike representations.
//!
//! The paper's efficiency argument (§VI) is that SNN layers are
//! *accumulate-only and sparse*: at T=2–3 most neurons never fire, so a
//! hardware implementation pays one AC per **spike**, not one MAC per
//! **weight**. The dense im2col+GEMM lowering simulates that network in
//! time proportional to *shape*; the kernels here consume a [`SpikeBatch`]
//! — per-sample sorted active indices plus the one common amplitude
//! `βV_th` every spike carries — and run in time proportional to
//! *activity*.
//!
//! # Bit-identity contract
//!
//! Both kernels accumulate each output element's active contributions in
//! exactly the order the dense path uses — ascending `(ch, ky, kx)` for
//! convolution (the im2col column order), ascending `k` for the linear
//! product — and skipped terms are precisely the terms the zero-skipping
//! dense kernels also drop. A skipped term contributes an exact `+0.0`
//! to a dense accumulator whenever the weight is finite (`0·finite = ±0.0`
//! and `acc + ±0.0 == acc` for every representable `acc` that can appear
//! mid-sum), and `SnnNetwork::validate` guarantees finite weights, so the
//! event-driven result is **bit-identical** to the dense result — the
//! property tests in `crates/snn/tests/sparse.rs` assert exact equality.

use crate::conv::ConvGeometry;
use crate::{parallel, Tensor};

/// Compact event representation of one spiking activation tensor: for each
/// sample of the batch, the sorted flat indices of its non-zero elements,
/// plus the single amplitude all of them share.
///
/// A spike layer's output only ever holds `0.0` or its amplitude `βV_th`
/// (Eq. 8 soft reset), so one `f32` plus an index list per sample loses
/// nothing. Inputs that violate that invariant — analog encodings, average
/// pools, residual sums of different amplitudes — make
/// [`SpikeBatch::refill_from_dense`] return `false` and the caller falls
/// back to the dense kernel.
#[derive(Debug, Clone, Default)]
pub struct SpikeBatch {
    shape: Vec<usize>,
    feature_len: usize,
    amp: f32,
    /// `offsets[b]..offsets[b+1]` delimits sample `b`'s slice of `indices`.
    offsets: Vec<usize>,
    /// Per-sample flat indices of active elements, ascending within a sample.
    indices: Vec<u32>,
}

impl SpikeBatch {
    /// An empty batch; fill it with [`SpikeBatch::refill_from_dense`].
    pub fn new() -> Self {
        SpikeBatch::default()
    }

    /// Extracts the event representation of `t`, reusing this batch's
    /// buffers (steady-state refills allocate nothing: the index buffer is
    /// reserved to `t.len()` up front rather than grown per push).
    ///
    /// Returns `false` — leaving the contents unspecified — when `t` is not
    /// a uniform-amplitude spike tensor, i.e. when two non-zero elements
    /// differ. `-0.0` counts as zero, matching the dense kernels' skip.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no axes, a zero-sized batch axis, or more than
    /// `u32::MAX` elements per sample.
    pub fn refill_from_dense(&mut self, t: &Tensor) -> bool {
        assert!(t.rank() >= 1, "SpikeBatch needs a batch axis");
        let batch = t.shape()[0];
        assert!(batch > 0, "SpikeBatch needs a non-empty batch");
        let feature = t.len() / batch;
        assert!(
            u32::try_from(feature).is_ok(),
            "SpikeBatch: sample too large for u32 indices"
        );
        self.shape.clear();
        self.shape.extend_from_slice(t.shape());
        self.feature_len = feature;
        self.offsets.clear();
        self.offsets.reserve(batch + 1);
        self.offsets.push(0);
        self.indices.clear();
        self.indices.reserve(t.len());
        let mut amp = 0.0f32;
        for sample in t.data().chunks(feature.max(1)) {
            for (j, &v) in sample.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                if amp == 0.0 {
                    amp = v;
                } else if v != amp {
                    return false;
                }
                self.indices.push(j as u32);
            }
            self.offsets.push(self.indices.len());
        }
        self.amp = amp;
        true
    }

    /// [`SpikeBatch::refill_from_dense`] into a fresh batch; `None` when
    /// `t` is not a uniform-amplitude spike tensor.
    pub fn from_dense(t: &Tensor) -> Option<Self> {
        let mut b = SpikeBatch::new();
        b.refill_from_dense(t).then_some(b)
    }

    /// Shape of the dense tensor this batch represents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The common amplitude of every event (`0.0` when no element fired).
    pub fn amp(&self) -> f32 {
        self.amp
    }

    /// Number of samples in the batch.
    pub fn batch(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of events across the batch.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of elements that are active, in `[0, 1]`.
    pub fn density(&self) -> f32 {
        let len = self.batch() * self.feature_len;
        if len == 0 {
            0.0
        } else {
            self.nnz() as f32 / len as f32
        }
    }

    /// Sample `b`'s ascending active flat indices.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn sample_indices(&self, b: usize) -> &[u32] {
        &self.indices[self.offsets[b]..self.offsets[b + 1]]
    }

    /// Reconstructs the dense tensor (test/debug helper).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        let od = out.data_mut();
        for b in 0..self.batch() {
            let base = b * self.feature_len;
            for &j in self.sample_indices(b) {
                od[base + j as usize] = self.amp;
            }
        }
        out
    }
}

/// One pass over `t` measuring what [`SpikeBatch::refill_from_dense`]
/// would conclude, without building the index list: whether the non-zeros
/// share one amplitude, and the non-zero fraction. The dense dispatch path
/// uses this to keep each layer's route decision fresh every step.
pub fn scan_uniform_density(t: &Tensor) -> (bool, f32) {
    let mut amp = 0.0f32;
    let mut uniform = true;
    let mut nnz = 0usize;
    for &v in t.data() {
        if v == 0.0 {
            continue;
        }
        nnz += 1;
        if amp == 0.0 {
            amp = v;
        } else if v != amp {
            uniform = false;
        }
    }
    let density = if t.is_empty() {
        0.0
    } else {
        nnz as f32 / t.len() as f32
    };
    (uniform, density)
}

/// Event-driven 2-d convolution: `events [N,C,H,W] * weight [F,C,KH,KW]
/// (+ bias [F])` into `out [N,F,OH,OW]`, without materialising im2col
/// columns.
///
/// Each event scatters into the output pixels whose receptive field covers
/// it. Events are sorted by flat input index `(ch, iy, ix)`, and for a
/// fixed output pixel the kernel coordinates `(ky, kx)` are monotone in
/// `(iy, ix)`, so every output element accumulates its terms in ascending
/// `(ch, ky, kx)` order — exactly the im2col column order of the dense
/// path, making results bit-identical to [`crate::conv::conv2d`] for
/// finite weights.
///
/// Work scales with activity: `nnz · (valid kernel offsets) · F` executed
/// accumulates (reported via `tensor.acs`) against the dense path's
/// `N·OH·OW·C·KH·KW·F` nominal (reported via `tensor.macs`, identically to
/// the dense kernel so the two runs stay comparable).
///
/// # Panics
///
/// Panics on rank or channel mismatches, as [`crate::conv::conv2d`].
pub fn conv2d_events(
    events: &SpikeBatch,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geo: ConvGeometry,
    out: &mut Tensor,
) {
    let shape = events.shape();
    assert_eq!(shape.len(), 4, "conv2d_events: events must be rank 4");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert_eq!(weight.rank(), 4, "conv2d_events: weight must be rank 4");
    let (f, wc) = (weight.shape()[0], weight.shape()[1]);
    let (kh, kw) = (weight.shape()[2], weight.shape()[3]);
    assert_eq!(
        c, wc,
        "conv2d: input has {c} channels but weight expects {wc}"
    );
    assert_eq!(
        (kh, kw),
        (geo.kh, geo.kw),
        "conv2d: weight kernel disagrees with geometry"
    );
    let (oh, ow) = geo.output_hw(h, w);
    let _span = ull_obs::span("tensor.conv2d_events");
    ull_obs::counter_add("tensor.macs", (n * oh * ow * c * kh * kw * f) as u64);
    out.reset_shaped(&[n, f, oh, ow]);
    let wd = weight.data();
    let bd = bias.map(|b| {
        assert_eq!(b.shape(), &[f], "conv2d: bias must have shape [F]");
        b.data()
    });
    let amp = events.amp();
    let hw = h * w;
    let plane = oh * ow;
    // One sample per work item, exactly like the dense path's per-image
    // im2col chunks: sample `b` owns the contiguous `[b·F·OH·OW ..)` block.
    parallel::par_chunks_mut(out.data_mut(), f * plane, |b, sample_out| {
        let mut executed = 0u64;
        for &idx in events.sample_indices(b) {
            let idx = idx as usize;
            let ch = idx / hw;
            let iy = (idx % hw) / w;
            let ix = idx % w;
            let wbase = (ch * kh) * kw;
            // Output rows this event can reach: oy·stride = iy + pad − ky.
            for ky in 0..kh {
                let span_y = iy + geo.padding;
                if span_y < ky {
                    break; // ky only grows; no later row reaches back further
                }
                if !(span_y - ky).is_multiple_of(geo.stride) {
                    continue;
                }
                let oy = (span_y - ky) / geo.stride;
                if oy >= oh {
                    continue; // too close to the top edge for this ky
                }
                for kx in 0..kw {
                    let span_x = ix + geo.padding;
                    if span_x < kx {
                        break;
                    }
                    if !(span_x - kx).is_multiple_of(geo.stride) {
                        continue;
                    }
                    let ox = (span_x - kx) / geo.stride;
                    if ox >= ow {
                        continue;
                    }
                    let widx = wbase + ky * kw + kx;
                    let o0 = oy * ow + ox;
                    executed += f as u64;
                    for fi in 0..f {
                        sample_out[fi * plane + o0] += amp * wd[fi * c * kh * kw + widx];
                    }
                }
            }
        }
        if let Some(bd) = bd {
            for (fi, fplane) in sample_out.chunks_mut(plane).enumerate() {
                for o in fplane {
                    *o += bd[fi];
                }
            }
        }
        ull_obs::counter_add("tensor.acs", executed);
    });
}

/// Event-driven `C = A · Bᵀ` for spiking `A` represented as `events
/// [m, k]` and dense `b: [n, k]`, writing `out: [m, n]`.
///
/// For each output element the active `k` indices are visited in ascending
/// order — the same order the zero-skipping dense kernel visits its
/// non-zero terms — so results are bit-identical to
/// [`crate::matmul_transpose_b`] for finite `b`.
///
/// # Panics
///
/// Panics if `events` is not rank 2 or the trailing dimensions disagree.
pub fn matmul_tb_events(events: &SpikeBatch, b: &Tensor, out: &mut Tensor) {
    let shape = events.shape();
    assert_eq!(shape.len(), 2, "matmul_tb_events: events must be rank 2");
    let (m, k) = (shape[0], shape[1]);
    assert_eq!(b.rank(), 2, "matmul_transpose_b rhs must be rank 2");
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k, k2,
        "matmul_transpose_b: trailing dims disagree ({k} vs {k2})"
    );
    let _span = ull_obs::span("tensor.matmul_tb_events");
    ull_obs::counter_add("tensor.macs", (m * k * n) as u64);
    out.reset_shaped(&[m, n]);
    let bd = b.data();
    let amp = events.amp();
    parallel::par_chunks_mut(out.data_mut(), n, |i, orow| {
        let idxs = events.sample_indices(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for &p in idxs {
                acc += amp * brow[p as usize];
            }
            *o = acc;
        }
        ull_obs::counter_add("tensor.acs", (idxs.len() * n) as u64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use crate::matmul_transpose_b;

    /// Spike-like tensor: zeros except `amp` wherever the hash fires.
    fn spike_tensor(shape: &[usize], amp: f32, one_in: usize, seed: usize) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|i| {
                if (i.wrapping_mul(2654435761).wrapping_add(seed)) % one_in == 0 {
                    amp
                } else {
                    0.0
                }
            })
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn round_trip_through_events() {
        let t = spike_tensor(&[3, 2, 4, 4], 0.625, 4, 7);
        let ev = SpikeBatch::from_dense(&t).unwrap();
        assert_eq!(ev.amp(), 0.625);
        assert_eq!(ev.nnz(), t.count_nonzero());
        assert_bits_eq(&ev.to_dense(), &t);
    }

    #[test]
    fn non_uniform_amplitudes_are_rejected() {
        let mut t = spike_tensor(&[2, 6], 1.0, 3, 0);
        assert!(SpikeBatch::from_dense(&t).is_some());
        t.data_mut()[0] = 0.5;
        t.data_mut()[3] = 1.0;
        assert!(SpikeBatch::from_dense(&t).is_none());
        let (uniform, _) = scan_uniform_density(&t);
        assert!(!uniform);
    }

    #[test]
    fn negative_zero_counts_as_zero() {
        let t = Tensor::from_vec(vec![-0.0, 1.5, 0.0, 1.5], &[2, 2]).unwrap();
        let ev = SpikeBatch::from_dense(&t).unwrap();
        assert_eq!(ev.nnz(), 2);
        assert_eq!(ev.amp(), 1.5);
    }

    #[test]
    fn all_silent_batch_is_valid() {
        let t = Tensor::zeros(&[2, 8]);
        let ev = SpikeBatch::from_dense(&t).unwrap();
        assert_eq!(ev.nnz(), 0);
        assert_eq!(ev.density(), 0.0);
        assert_bits_eq(&ev.to_dense(), &t);
    }

    #[test]
    fn refill_reuses_buffers() {
        let a = spike_tensor(&[2, 3, 4, 4], 0.5, 3, 1);
        let b = spike_tensor(&[2, 3, 4, 4], 0.5, 5, 2);
        let mut ev = SpikeBatch::new();
        assert!(ev.refill_from_dense(&a));
        let cap = ev.indices.capacity();
        assert!(ev.refill_from_dense(&b));
        assert_eq!(ev.indices.capacity(), cap);
        assert_bits_eq(&ev.to_dense(), &b);
    }

    #[test]
    fn conv_events_bit_identical_to_dense() {
        for (stride, padding, one_in) in [(1, 0, 3), (1, 1, 4), (2, 1, 5), (1, 2, 2)] {
            let geo = ConvGeometry {
                kh: 3,
                kw: 3,
                stride,
                padding,
            };
            let x = spike_tensor(&[2, 3, 6, 6], 0.75, one_in, stride + padding);
            let wgt = rand_tensor(&[4, 3, 3, 3], 40);
            let bias = rand_tensor(&[4], 41);
            let dense = conv2d(&x, &wgt, Some(&bias), geo);
            let ev = SpikeBatch::from_dense(&x).unwrap();
            let mut sparse = Tensor::default();
            conv2d_events(&ev, &wgt, Some(&bias), geo, &mut sparse);
            assert_bits_eq(&sparse, &dense);
        }
    }

    #[test]
    fn conv_events_one_by_one_kernel() {
        let geo = ConvGeometry::square(1, 1, 0);
        let x = spike_tensor(&[1, 4, 5, 5], 1.0, 3, 9);
        let wgt = rand_tensor(&[2, 4, 1, 1], 50);
        let ev = SpikeBatch::from_dense(&x).unwrap();
        let mut sparse = Tensor::default();
        conv2d_events(&ev, &wgt, None, geo, &mut sparse);
        assert_bits_eq(&sparse, &conv2d(&x, &wgt, None, geo));
    }

    #[test]
    fn matmul_events_bit_identical_to_dense() {
        let a = spike_tensor(&[5, 12], 0.375, 3, 11);
        let b = rand_tensor(&[7, 12], 60);
        let dense = matmul_transpose_b(&a, &b);
        let ev = SpikeBatch::from_dense(&a).unwrap();
        let mut sparse = Tensor::default();
        matmul_tb_events(&ev, &b, &mut sparse);
        assert_bits_eq(&sparse, &dense);
    }

    #[test]
    fn event_kernels_report_executed_acs() {
        let _obs = ull_obs::test_lock();
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        ull_obs::reset();
        ull_obs::set_enabled(true);
        let a = spike_tensor(&[3, 10], 1.0, 2, 0);
        let b = rand_tensor(&[4, 10], 70);
        let ev = SpikeBatch::from_dense(&a).unwrap();
        let mut out = Tensor::default();
        matmul_tb_events(&ev, &b, &mut out);
        ull_obs::set_enabled(false);
        let snap = ull_obs::snapshot();
        assert_eq!(snap.counters["tensor.macs"], 3 * 10 * 4);
        assert_eq!(snap.counters["tensor.acs"], (ev.nnz() * 4) as u64);
        parallel::set_threads(0);
    }
}
