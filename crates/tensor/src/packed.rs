//! Weight-stationary packed dense kernels.
//!
//! At the paper's ultra-low latencies (T ≤ 5) the dense path dominates
//! per-step cost: the first simulated step always routes dense, and any
//! layer above the sparsity cutoff pays a full GEMM with the weight matrix
//! streamed from its canonical layout on every call. But the weights of a
//! converted SNN are *fixed at conversion time* — so their memory layout
//! can be prepared once and reused for every timestep, batch and serving
//! replica.
//!
//! [`PackedWeights`] lays a weight matrix out once into k-major panels of
//! [`PANEL_WIDTH`] output features: within a panel, the [`PANEL_WIDTH`]
//! weights an inner-product step needs are contiguous, so the packed GEMM
//! streams the panel linearly while register-blocking over
//! [`PANEL_WIDTH`]-wide output columns and 4-high output rows. The packed
//! kernels [`matmul_packed`] / [`matmul_tb_packed`] (and
//! [`crate::conv::conv2d_packed_into`], which reuses the same core after
//! im2col) replace the unpacked kernels on the SNN dense path.
//!
//! # Bit-identity contract
//!
//! Register blocking changes *which* output elements are computed together,
//! never *how* one element accumulates: every output element still sums its
//! `a[i,p]·b[p,j]` terms in ascending `p` order into an accumulator that
//! starts at `+0.0`, with exactly the `a == 0.0` terms the unpacked kernels
//! also skip. Products have identical operands, sums identical order — so
//! packed results are **bit-identical** to the unpacked kernels for every
//! shape, sparsity and `ULL_THREADS` (asserted exhaustively by
//! `crates/tensor/tests/packed_diff.rs`).
//!
//! # Enabling / disabling
//!
//! Packing is on by default. [`set_packed`] overrides process-wide; the
//! `ULL_PACKED` environment variable (`0/1/on/off/true/false`, read once,
//! malformed values warn once and are ignored) configures deployments.
//! Because both paths are bit-identical, the toggle is purely operational —
//! it exists so the differential harness and benches can compare them.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::parallel;
use crate::Tensor;

/// Output features per packed panel — the register-blocking tile width.
/// Eight `f32` accumulators fit comfortably in registers on every target
/// this workspace cares about; the value never affects results, only the
/// memory layout.
pub const PANEL_WIDTH: usize = 8;

/// Output rows processed per register tile. As with [`PANEL_WIDTH`],
/// purely a performance knob: each row's accumulators are independent.
const TILE_ROWS: usize = 4;

/// Which GEMM operand orientation a [`PackedWeights`] was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackLayout {
    /// Packed from `B: [k, n]` for `C = A · B` ([`matmul_packed`]).
    Rhs,
    /// Packed from `B: [n, k]` for `C = A · Bᵀ` ([`matmul_tb_packed`]) —
    /// the layer-weight orientation (`[out_features, in_features]`, or a
    /// conv filter bank flattened to `[F, C·KH·KW]`).
    RhsT,
}

/// A weight matrix laid out once for the packed kernels: k-major panels of
/// [`PANEL_WIDTH`] output features, so the inner reduction loop streams
/// contiguous memory regardless of the source orientation.
///
/// The pack also records an FNV fingerprint of the source weights (bits
/// and shape), which callers use to detect stale packs after weights
/// mutate (chaos swaps, fault injection, training steps).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedWeights {
    layout: PackLayout,
    /// Output features (GEMM `n`).
    n: usize,
    /// Reduction length (GEMM `k`).
    k: usize,
    /// Panels back to back: panel `q` covers output features
    /// `q·PANEL_WIDTH ..` and stores, for each `p` in `0..k`, its features'
    /// weights contiguously.
    data: Vec<f32>,
    fingerprint: u64,
    /// `[F, C, KH, KW]` of the source filter bank when this pack was built
    /// by [`PackedWeights::pack_conv`].
    conv_dims: Option<[usize; 4]>,
}

impl PackedWeights {
    /// Packs `b: [n, k]` for the `C = A · Bᵀ` kernel — the orientation of
    /// linear-layer weights.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank 2.
    pub fn pack_rhs_t(b: &Tensor) -> Self {
        let (n, k) = dims2(b, "pack_rhs_t source");
        let bd = b.data();
        PackedWeights {
            layout: PackLayout::RhsT,
            n,
            k,
            data: pack_panels(n, k, |j, p| bd[j * k + p]),
            fingerprint: tensor_fingerprint(b),
            conv_dims: None,
        }
    }

    /// Packs `b: [k, n]` for the `C = A · B` kernel.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank 2.
    pub fn pack_rhs(b: &Tensor) -> Self {
        let (k, n) = dims2(b, "pack_rhs source");
        let bd = b.data();
        PackedWeights {
            layout: PackLayout::Rhs,
            n,
            k,
            data: pack_panels(n, k, |j, p| bd[p * n + j]),
            fingerprint: tensor_fingerprint(b),
            conv_dims: None,
        }
    }

    /// Packs a conv filter bank `weight: [F, C, KH, KW]`, pre-reshaped to
    /// the `[F, C·KH·KW]` im2col GEMM operand (which it already is in
    /// row-major memory) and packed like [`PackedWeights::pack_rhs_t`].
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 4.
    pub fn pack_conv(weight: &Tensor) -> Self {
        assert_eq!(
            weight.rank(),
            4,
            "pack_conv needs a [F, C, KH, KW] filter bank, got shape {:?}",
            weight.shape()
        );
        let [f, c, kh, kw] = [
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        ];
        let k = c * kh * kw;
        let wd = weight.data();
        PackedWeights {
            layout: PackLayout::RhsT,
            n: f,
            k,
            data: pack_panels(f, k, |j, p| wd[j * k + p]),
            fingerprint: tensor_fingerprint(weight),
            conv_dims: Some([f, c, kh, kw]),
        }
    }

    /// The pack's operand orientation.
    pub fn layout(&self) -> PackLayout {
        self.layout
    }

    /// Output features (GEMM `n`; conv `F`).
    pub fn out_features(&self) -> usize {
        self.n
    }

    /// Reduction length (GEMM `k`; conv `C·KH·KW`).
    pub fn reduction_len(&self) -> usize {
        self.k
    }

    /// FNV fingerprint of the source weights (bits and shape) at pack
    /// time. Compare against [`tensor_fingerprint`] of the live weights to
    /// detect a stale pack.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// `[F, C, KH, KW]` of the source filter bank, when packed by
    /// [`PackedWeights::pack_conv`].
    pub fn conv_dims(&self) -> Option<[usize; 4]> {
        self.conv_dims
    }

    /// Bytes held by the packed buffer.
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Lays `n` output features × `k` reduction steps out as k-major panels;
/// `get(j, p)` reads source weight for output feature `j`, reduction step
/// `p`.
fn pack_panels(n: usize, k: usize, get: impl Fn(usize, usize) -> f32) -> Vec<f32> {
    let _span = ull_obs::span("tensor.pack");
    ull_obs::counter_add("tensor.pack.bytes", (n * k * 4) as u64);
    let mut data = Vec::with_capacity(n * k);
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(PANEL_WIDTH);
        for p in 0..k {
            for j in j0..j0 + w {
                data.push(get(j, p));
            }
        }
        j0 += w;
    }
    data
}

/// FNV-1a over a tensor's shape and raw `f32` bit patterns — the cheap
/// content identity the pack caches key on. Folds whole `u32` words (not
/// bytes) so a multi-million-parameter network fingerprints in one fast
/// pass; the shape prefix distinguishes equal-data different-shape
/// tensors.
pub fn tensor_fingerprint(t: &Tensor) -> u64 {
    let mut h = fingerprint_words(0xcbf2_9ce4_8422_2325, t.shape().iter().map(|&d| d as u64));
    h = fingerprint_words(h, t.data().iter().map(|v| u64::from(v.to_bits())));
    h
}

fn fingerprint_words(mut h: u64, words: impl Iterator<Item = u64>) -> u64 {
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `C = A · B` over packed weights (`A: [m, k]`, pack source `B: [k, n]`).
/// Bit-identical to [`crate::matmul`] for every input and thread count.
///
/// # Panics
///
/// Panics if `a` is not rank 2, the pack was not built by
/// [`PackedWeights::pack_rhs`], or the reduction lengths disagree.
pub fn matmul_packed(a: &Tensor, b: &PackedWeights) -> Tensor {
    assert_eq!(
        b.layout,
        PackLayout::Rhs,
        "matmul_packed needs a pack_rhs-packed operand"
    );
    let mut out = Tensor::default();
    packed_gemm_into(a, b, &mut out, "tensor.matmul_packed");
    out
}

/// `C = A · Bᵀ` over packed weights (`A: [m, k]`, pack source `B: [n, k]`).
/// Bit-identical to [`crate::matmul_transpose_b`] for every input and
/// thread count.
///
/// # Panics
///
/// Panics if `a` is not rank 2, the pack was not built by
/// [`PackedWeights::pack_rhs_t`] / [`PackedWeights::pack_conv`], or the
/// reduction lengths disagree.
pub fn matmul_tb_packed(a: &Tensor, b: &PackedWeights) -> Tensor {
    let mut out = Tensor::default();
    matmul_tb_packed_into(a, b, &mut out);
    out
}

/// [`matmul_tb_packed`] writing into a caller-owned output tensor (resized
/// in place — steady-state callers allocate nothing).
///
/// # Panics
///
/// See [`matmul_tb_packed`].
pub fn matmul_tb_packed_into(a: &Tensor, b: &PackedWeights, out: &mut Tensor) {
    assert_eq!(
        b.layout,
        PackLayout::RhsT,
        "matmul_tb_packed needs a pack_rhs_t/pack_conv-packed operand"
    );
    packed_gemm_into(a, b, out, "tensor.matmul_tb_packed");
}

fn packed_gemm_into(a: &Tensor, b: &PackedWeights, out: &mut Tensor, span: &'static str) {
    let (m, k) = dims2(a, "packed matmul lhs");
    assert_eq!(
        k, b.k,
        "packed matmul: reduction lengths disagree ({k} vs {})",
        b.k
    );
    out.reset_shaped(&[m, b.n]);
    packed_gemm_raw(a.data(), m, b, out.data_mut(), span);
}

/// Row-major packed GEMM core over raw slices: `ad: [m, k]` against a
/// packed `[n, k]`-semantics operand, writing `out: [m, n]`. Shared by the
/// public packed matmuls and [`crate::conv::conv2d_packed_into`] (whose
/// im2col scratch is a plain `Vec`).
///
/// Register-blocks over [`TILE_ROWS`] output rows × [`PANEL_WIDTH`] output
/// columns with the reduction loop innermost. Each output element's
/// accumulator receives its non-zero terms in ascending `p` order starting
/// from `+0.0` — exactly the unpacked kernels' per-element order — so the
/// result is bit-identical to [`crate::matmul::matmul_tb_raw`] (and to
/// [`crate::matmul`] for the [`PackLayout::Rhs`] orientation).
pub(crate) fn packed_gemm_raw(
    ad: &[f32],
    m: usize,
    b: &PackedWeights,
    out: &mut [f32],
    span: &'static str,
) {
    let (n, k) = (b.n, b.k);
    assert_eq!(ad.len(), m * k, "packed gemm: lhs length");
    assert_eq!(out.len(), m * n, "packed gemm: out length");
    let _span = ull_obs::span(span);
    ull_obs::counter_add("tensor.macs", (m * k * n) as u64);
    if m * n == 0 {
        return;
    }
    let block = crate::matmul::row_block(m);
    parallel::par_chunks_mut(out, block * n, |ci, chunk| {
        let i0 = ci * block;
        let rows = chunk.len() / n;
        let mut executed = 0u64;
        let mut r0 = 0usize;
        while r0 < rows {
            let mr = (rows - r0).min(TILE_ROWS);
            // Row slices of the tile, fixed-size so the hot loop stays
            // allocation-free; only the first `mr` entries are real.
            let mut arows: [&[f32]; TILE_ROWS] = [&[]; TILE_ROWS];
            for (r, slot) in arows.iter_mut().enumerate().take(mr) {
                let row = i0 + r0 + r;
                *slot = &ad[row * k..(row + 1) * k];
                executed += slot.iter().filter(|&&v| v != 0.0).count() as u64 * n as u64;
            }
            let mut j0 = 0usize;
            let mut panel_off = 0usize;
            while j0 < n {
                let w = (n - j0).min(PANEL_WIDTH);
                let panel = &b.data[panel_off..panel_off + w * k];
                let mut acc = [[0.0f32; PANEL_WIDTH]; TILE_ROWS];
                for (p, brow) in panel.chunks_exact(w).enumerate() {
                    for (arow, accr) in arows.iter().zip(acc.iter_mut()).take(mr) {
                        let av = arow[p];
                        if av == 0.0 {
                            continue; // the same terms the unpacked kernels skip
                        }
                        for (o, &bv) in accr[..w].iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let start = (r0 + r) * n + j0;
                    chunk[start..start + w].copy_from_slice(&accr[..w]);
                }
                panel_off += w * k;
                j0 += w;
            }
            r0 += mr;
        }
        ull_obs::counter_add("tensor.acs", executed);
    });
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{what} must be rank 2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

// ---------------------------------------------------------------------------
// Process-wide enable/disable toggle
// ---------------------------------------------------------------------------

const TOGGLE_UNSET: u8 = 0;
const TOGGLE_ON: u8 = 1;
const TOGGLE_OFF: u8 = 2;

static PACKED_OVERRIDE: AtomicU8 = AtomicU8::new(TOGGLE_UNSET);

/// `ULL_PACKED` is read once; use [`set_packed`] to retune at runtime.
static ENV_PACKED: OnceLock<Option<bool>> = OnceLock::new();

/// Parses one `ULL_PACKED` value.
fn parse_packed(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(format!("`{raw}` is not a boolean (use 0/1/on/off)")),
    }
}

/// Resolves an environment-supplied toggle: well-formed values are used,
/// malformed values warn once on stderr and fall back to the default.
fn resolve_env_packed(raw: Option<&str>) -> Option<bool> {
    match raw {
        None => None,
        Some(s) => match parse_packed(s) {
            Ok(v) => Some(v),
            Err(why) => {
                eprintln!("warning: ignoring malformed ULL_PACKED ({why}); packing stays enabled");
                None
            }
        },
    }
}

fn env_packed() -> Option<bool> {
    *ENV_PACKED.get_or_init(|| resolve_env_packed(std::env::var("ULL_PACKED").ok().as_deref()))
}

/// Whether callers should route dense GEMMs through packed weights.
///
/// Resolution order: [`set_packed`] override → `ULL_PACKED` environment
/// variable → enabled. Purely operational: both paths are bit-identical.
pub fn packed_enabled() -> bool {
    match PACKED_OVERRIDE.load(Ordering::Relaxed) {
        TOGGLE_ON => true,
        TOGGLE_OFF => false,
        _ => env_packed().unwrap_or(true),
    }
}

/// Overrides the packing toggle process-wide; `None` restores the
/// environment/default resolution. Mainly for the differential harness and
/// benches that compare packed and unpacked runs within one process.
pub fn set_packed(on: Option<bool>) {
    let v = match on {
        Some(true) => TOGGLE_ON,
        Some(false) => TOGGLE_OFF,
        None => TOGGLE_UNSET,
    };
    PACKED_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Serializes tests that mutate the global packing override so they do not
/// race each other (test binaries run tests concurrently).
#[doc(hidden)]
pub fn packed_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, matmul_transpose_b};

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn packed_tb_matches_unpacked_bitwise_across_panel_boundaries() {
        for n in [1usize, 7, 8, 9, 16, 17] {
            for m in [1usize, 3, 4, 5, 9] {
                let a = rand_tensor(&[m, 6], (m * 31 + n) as u64);
                let b = rand_tensor(&[n, 6], (m * 7 + n * 3) as u64);
                let packed = PackedWeights::pack_rhs_t(&b);
                assert_bits_eq(&matmul_tb_packed(&a, &packed), &matmul_transpose_b(&a, &b));
            }
        }
    }

    #[test]
    fn packed_matmul_matches_unpacked_bitwise() {
        for n in [1usize, 5, 8, 13] {
            let a = rand_tensor(&[6, 9], n as u64 + 100);
            let b = rand_tensor(&[9, n], n as u64 + 200);
            let packed = PackedWeights::pack_rhs(&b);
            assert_bits_eq(&matmul_packed(&a, &packed), &matmul(&a, &b));
        }
    }

    #[test]
    fn sparse_lhs_is_bit_identical_too() {
        // The SNN hot path: a mostly-zero spike matrix against packed
        // weights. Zero-skip must drop exactly the unpacked kernel's terms.
        let mut a = rand_tensor(&[9, 12], 5);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = if (i * 2654435761) % 4 == 0 { 0.5 } else { 0.0 };
        }
        let b = rand_tensor(&[10, 12], 6);
        let packed = PackedWeights::pack_rhs_t(&b);
        assert_bits_eq(&matmul_tb_packed(&a, &packed), &matmul_transpose_b(&a, &b));
    }

    #[test]
    fn pack_conv_flattens_to_the_gemm_operand() {
        let w = rand_tensor(&[5, 2, 3, 3], 9);
        let packed = PackedWeights::pack_conv(&w);
        assert_eq!(packed.out_features(), 5);
        assert_eq!(packed.reduction_len(), 18);
        assert_eq!(packed.conv_dims(), Some([5, 2, 3, 3]));
        // Packing the reshaped rank-2 view must produce identical panels.
        let w2 = w.reshape(&[5, 18]).unwrap();
        let packed2 = PackedWeights::pack_rhs_t(&w2);
        assert_eq!(packed.data, packed2.data);
    }

    #[test]
    fn fingerprint_tracks_content_and_shape() {
        let a = rand_tensor(&[4, 6], 11);
        let packed = PackedWeights::pack_rhs_t(&a);
        assert_eq!(packed.fingerprint(), tensor_fingerprint(&a));
        let mut mutated = a.clone();
        mutated.data_mut()[3] += 1.0;
        assert_ne!(packed.fingerprint(), tensor_fingerprint(&mutated));
        // Same bits, different shape — must not collide.
        let reshaped = a.reshape(&[6, 4]).unwrap();
        assert_ne!(tensor_fingerprint(&a), tensor_fingerprint(&reshaped));
    }

    #[test]
    fn executed_acs_counter_matches_the_unpacked_kernel() {
        let _obs = ull_obs::test_lock();
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        let mut a = rand_tensor(&[4, 10], 30);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0 } else { 0.0 };
        }
        let b = rand_tensor(&[6, 10], 31);
        let packed = PackedWeights::pack_rhs_t(&b);
        ull_obs::reset();
        ull_obs::set_enabled(true);
        let _ = matmul_tb_packed(&a, &packed);
        ull_obs::set_enabled(false);
        let snap = ull_obs::snapshot();
        assert_eq!(snap.counters["tensor.macs"], 4 * 10 * 6);
        assert_eq!(snap.counters["tensor.acs"], 2 * 10 * 6);
        parallel::set_threads(0);
        ull_obs::reset();
    }

    #[test]
    fn toggle_parses_and_rejects() {
        assert_eq!(parse_packed("1"), Ok(true));
        assert_eq!(parse_packed(" off "), Ok(false));
        assert_eq!(parse_packed("TRUE"), Ok(true));
        assert!(parse_packed("maybe").is_err());
        assert!(parse_packed("").is_err());
        for bad in ["maybe", "", "2"] {
            assert_eq!(resolve_env_packed(Some(bad)), None, "input {bad:?}");
        }
        assert_eq!(resolve_env_packed(Some("on")), Some(true));
        assert_eq!(resolve_env_packed(None), None);
    }

    #[test]
    fn override_controls_packed_enabled() {
        let _guard = packed_lock();
        set_packed(Some(false));
        assert!(!packed_enabled());
        set_packed(Some(true));
        assert!(packed_enabled());
        set_packed(None);
        assert!(packed_enabled(), "default is enabled");
    }

    #[test]
    #[should_panic(expected = "reduction lengths disagree")]
    fn mismatched_reduction_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = PackedWeights::pack_rhs_t(&Tensor::zeros(&[4, 5]));
        let _ = matmul_tb_packed(&a, &b);
    }

    #[test]
    #[should_panic(expected = "pack_rhs_t")]
    fn wrong_layout_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = PackedWeights::pack_rhs(&Tensor::zeros(&[3, 4]));
        let _ = matmul_tb_packed(&a, &b);
    }
}
