//! Dependency-free data parallelism for the hot kernels.
//!
//! A `std::thread::scope`-based worker pool with three entry points:
//!
//! * [`par_chunks_mut`] — split a mutable slice into contiguous chunks and
//!   process them concurrently (row-blocked matmul, im2col).
//! * [`par_map`] — evaluate `f(0..n)` concurrently and return the results
//!   in index order (batch-parallel SNN simulation, per-layer α/β search).
//! * [`par_join`] — run two closures concurrently.
//!
//! # Thread count
//!
//! [`num_threads`] resolves, in order: the programmatic [`set_threads`]
//! override, the `ULL_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. `ULL_THREADS=1` (or
//! `set_threads(1)`) is a guaranteed serial fallback: every entry point
//! runs its work inline on the calling thread without spawning.
//!
//! # Determinism
//!
//! The pool only ever hands out *work distribution*; callers keep each
//! output element's accumulation order identical to the serial loop
//! (contiguous row/batch blocks, reductions folded in index order). Under
//! that contract — upheld by every kernel in this workspace — results are
//! **bit-identical for every thread count**. The property tests in
//! `crates/tensor/tests/proptests.rs` and `crates/snn/tests/proptests.rs`
//! assert exact equality between 1-, 2-, 3- and 4-thread runs.
//!
//! Threads are scoped: they are spawned and joined inside each call, so
//! the pool holds no global state beyond the thread-count override and
//! borrows (not moves) the caller's data. Calls nested inside a worker
//! run inline on that worker — an outer fan-out (batch-parallel SNN
//! steps) already owns every core, so inner kernels (matmul, im2col) do
//! not spawn a second generation of threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Set while a pool worker runs caller code. Nested parallel calls
    /// (e.g. a batch-parallel SNN step invoking the row-parallel matmul)
    /// then run inline instead of spawning threads quadratically — the
    /// outer fan-out already owns every core.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Marks the current thread as a pool worker for the duration of `f`.
fn as_pool_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_POOL.with(|p| p.set(true));
    let r = f();
    IN_POOL.with(|p| p.set(false));
    r
}

/// Programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `ULL_THREADS` is read once — changing the environment mid-process does
/// not retune the pool (the override exists for that).
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Parses one `ULL_THREADS` value. `Err` carries the reason the value was
/// rejected (not an integer, empty, or zero — zero workers is meaningless;
/// `1` is the serial fallback).
fn parse_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("0 workers is not meaningful (use 1 for serial)".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("`{raw}` is not a positive integer")),
    }
}

/// Resolves an environment-supplied thread count: well-formed values are
/// used, malformed values (`abc`, `0`, whitespace) warn once on stderr and
/// fall back to the default resolution (`None`) instead of being silently
/// dropped — mirroring the `ULL_SPARSE_CUTOFF` handling in `ull-snn`.
fn resolve_env_threads(raw: Option<&str>) -> Option<usize> {
    match raw {
        None => None,
        Some(s) => match parse_threads(s) {
            Ok(n) => Some(n),
            Err(why) => {
                eprintln!(
                    "warning: ignoring malformed ULL_THREADS ({why}); \
                     using available parallelism"
                );
                None
            }
        },
    }
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| resolve_env_threads(std::env::var("ULL_THREADS").ok().as_deref()))
}

/// [`std::thread::available_parallelism`] resolved once per process. The
/// OS query sits on the resolution path of every kernel call; caching it
/// keeps `num_threads` to two atomic loads on the hot path. The count a
/// process observes is therefore stable even if the OS would report a
/// different value later (cgroup resize, CPU hotplug) — acceptable, since
/// the pool's sizing is a performance hint, never a correctness input.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker count every parallel entry point will use.
///
/// Resolution order: [`set_threads`] override → `ULL_THREADS` environment
/// variable (malformed values warn once and are ignored) →
/// [`std::thread::available_parallelism`] (queried once, then cached) → 1.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    default_threads()
}

/// Overrides the worker count process-wide; `set_threads(0)` restores the
/// `ULL_THREADS`/`available_parallelism` default. Mainly for tests and
/// benches that compare thread counts within one process.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits `data` into contiguous `chunk_len`-sized pieces (the last may be
/// shorter) and calls `f(chunk_index, chunk)` once per piece, distributing
/// pieces over the worker pool.
///
/// Chunks are disjoint, so any execution order yields the same memory
/// contents; pass a chunk-index-addressed `f` so each piece knows which
/// rows it owns.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = num_threads();
    let n_chunks = data.len().div_ceil(chunk_len.max(1));
    if threads <= 1 || n_chunks <= 1 || in_pool() {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // A locked iterator hands each chunk to exactly one worker. The lock
    // is taken once per chunk; chunks are coarse (whole row blocks), so
    // contention is negligible against the work inside `f`.
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    // Workers adopt the caller's open-span path so any spans inside `f`
    // roll up under the span that issued this parallel call.
    let parent = ull_obs::current_path();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n_chunks) {
            s.spawn(|| {
                as_pool_worker(|| {
                    ull_obs::with_parent_path(&parent, || loop {
                        let next = queue.lock().expect("chunk queue poisoned").next();
                        match next {
                            Some((i, chunk)) => f(i, chunk),
                            None => break,
                        }
                    })
                })
            });
        }
    });
}

/// Evaluates `f(i)` for `i in 0..n` across the worker pool and returns the
/// results **in index order**, exactly as the serial `(0..n).map(f)` would.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= 1 || in_pool() {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let parent = ull_obs::current_path();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                as_pool_worker(|| {
                    ull_obs::with_parent_path(&parent, || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let value = f(i);
                        *slots[i].lock().expect("result slot poisoned") = Some(value);
                    })
                })
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Runs `a` and `b` concurrently (or serially, in that order, when the
/// pool is size 1) and returns both results.
pub fn par_join<RA, RB, FA, FB>(a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if num_threads() <= 1 || in_pool() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let parent = ull_obs::current_path();
    std::thread::scope(|s| {
        let hb = s.spawn(|| as_pool_worker(|| ull_obs::with_parent_path(&parent, b)));
        let ra = a();
        (ra, hb.join().expect("par_join worker panicked"))
    })
}

/// Serializes tests that mutate the global thread override so they do not
/// race each other (test binaries run tests concurrently).
#[doc(hidden)]
pub fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let _guard = override_lock();
        for threads in [1, 2, 4] {
            set_threads(threads);
            let mut v = vec![0u32; 103];
            par_chunks_mut(&mut v, 10, |i, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (i * 10 + j) as u32 + 1;
                }
            });
            assert!(
                v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1),
                "threads={threads}"
            );
        }
        set_threads(0);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let _guard = override_lock();
        for threads in [1, 3, 8] {
            set_threads(threads);
            let out = par_map(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn par_join_returns_both() {
        let _guard = override_lock();
        for threads in [1, 2] {
            set_threads(threads);
            let (a, b) = par_join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
        set_threads(0);
    }

    #[test]
    fn serial_fallback_spawns_no_threads() {
        let _guard = override_lock();
        set_threads(1);
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        let mut v = vec![0u8; 16];
        par_chunks_mut(&mut v, 4, |_, _| {});
        let ids = par_map(4, |_| std::thread::current().id());
        seen.extend(ids);
        assert!(seen.iter().all(|&id| id == caller));
        set_threads(0);
    }

    #[test]
    fn well_formed_thread_counts_parse() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 4 "), Ok(4), "whitespace is trimmed");
        assert_eq!(resolve_env_threads(Some("3")), Some(3));
        assert_eq!(resolve_env_threads(None), None);
    }

    #[test]
    fn malformed_thread_counts_warn_and_default() {
        // Regression: these used to be silently dropped by a
        // `.parse().ok()` chain, so `ULL_THREADS=abc` behaved exactly like
        // an unset variable with no hint to the operator. The resolution
        // layer must reject each one (warning once) and fall back.
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("0").is_err(), "0 workers is meaningless");
        assert!(parse_threads("").is_err());
        assert!(parse_threads("  ").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("2.5").is_err());
        for bad in ["abc", "0", "", "  ", "-2", "2.5", "4x"] {
            assert_eq!(resolve_env_threads(Some(bad)), None, "input {bad:?}");
        }
    }

    #[test]
    fn resolved_default_thread_count_is_cached_and_stable() {
        // Regression: `num_threads` used to re-query
        // `available_parallelism` on every call — a per-kernel-call OS
        // query on the hot path. The resolved count must now come from the
        // `OnceLock` cache: positive and identical on every call.
        let first = default_threads();
        assert!(first >= 1);
        for _ in 0..1000 {
            assert_eq!(default_threads(), first);
        }
        // And the full resolution chain stays stable too.
        let _guard = override_lock();
        set_threads(0);
        let resolved = num_threads();
        for _ in 0..100 {
            assert_eq!(num_threads(), resolved);
        }
    }

    #[test]
    fn override_beats_environment() {
        let _guard = override_lock();
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn nested_calls_run_inline_on_the_worker() {
        let _guard = override_lock();
        set_threads(4);
        let outer = par_map(4, |i| {
            let worker = std::thread::current().id();
            // The nested call must not spawn: every inner closure runs on
            // the same pool worker that owns the outer item.
            let inner = par_map(3, |_| std::thread::current().id());
            (i, inner.into_iter().all(|id| id == worker))
        });
        assert!(outer.iter().all(|&(_, same)| same));
        set_threads(0);
    }

    #[test]
    fn worker_spans_roll_up_under_the_callers_span() {
        let _guard = override_lock();
        let _obs = ull_obs::test_lock();
        ull_obs::reset();
        ull_obs::set_enabled(true);
        set_threads(4);
        {
            let _outer = ull_obs::span("outer");
            let _ = par_map(8, |i| {
                let _inner = ull_obs::span("work");
                i * 2
            });
        }
        set_threads(0);
        ull_obs::set_enabled(false);
        let snap = ull_obs::snapshot();
        // Every per-item span lands on the parent path, none at top level.
        assert_eq!(snap.spans["outer/work"].count, 8);
        assert!(!snap.spans.contains_key("work"));
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let _guard = override_lock();
        set_threads(4);
        let mut empty: Vec<f32> = Vec::new();
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        assert_eq!(par_map(0, |i| i).len(), 0);
        let mut one = vec![1.0f32];
        par_chunks_mut(&mut one, 8, |i, c| {
            assert_eq!(i, 0);
            c[0] = 2.0;
        });
        assert_eq!(one, vec![2.0]);
        set_threads(0);
    }
}
