use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the workspace:
/// DNN activations, SNN membrane potentials, weights and gradients are all
/// `Tensor`s. The layout convention for image batches is `NCHW`.
///
/// # Example
///
/// ```
/// use ull_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(())
    }

    /// Reshapes `self` to `shape` and zero-fills it, reusing the existing
    /// buffers' capacity. This is the allocation-free reset used by the
    /// SNN step workspace: after the first step no call allocates.
    pub fn reset_shaped(&mut self, shape: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        let len = shape.iter().product();
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Makes `self` an exact copy of `src`, reusing the existing buffers'
    /// capacity (unlike `Clone::clone`, which always allocates fresh ones).
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Copies rows `lo..hi` of the leading (batch) axis into a new tensor
    /// with the same trailing shape. Row-major layout makes this a single
    /// contiguous copy, which is what the batch-parallel SNN simulation
    /// uses to hand each worker its slice of the batch.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor or if `lo >= hi` or `hi` exceeds the
    /// batch dimension.
    pub fn slice_batch(&self, lo: usize, hi: usize) -> Self {
        assert!(self.rank() >= 1, "slice_batch needs at least one axis");
        let batch = self.shape[0];
        assert!(
            lo < hi && hi <= batch,
            "slice_batch: {lo}..{hi} out of range for batch {batch}"
        );
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = hi - lo;
        Tensor {
            shape,
            data: self.data[lo * stride..hi * stride].to_vec(),
        }
    }

    /// Concatenates tensors along the leading (batch) axis, in order —
    /// the inverse of splitting with [`Tensor::slice_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the trailing shapes disagree.
    pub fn concat_batch(parts: &[Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_batch of no tensors");
        let tail = &parts[0].shape[1..];
        let mut batch = 0;
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            assert_eq!(
                &p.shape[1..],
                tail,
                "concat_batch: trailing shapes disagree"
            );
            batch += p.shape[0];
            data.extend_from_slice(&p.data);
        }
        let mut shape = vec![batch];
        shape.extend_from_slice(tail);
        Tensor { shape, data }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let o = self.offset(idx);
        self.data[o] = value;
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape, other.shape,
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient. Panics on shape mismatch.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other`, the AXPY primitive used by optimizers.
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        self.assert_same_shape(other, "add_scaled");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Adds `value` to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Self {
        self.map(|x| x + value)
    }

    /// Multiplies every element by `value`, returning a new tensor.
    pub fn scale(&self, value: f32) -> Self {
        self.map(|x| x * value)
    }

    /// Multiplies every element by `value` in place.
    pub fn scale_in_place(&mut self, value: f32) {
        for x in &mut self.data {
            *x *= value;
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// `true` when every element is finite (no NaN and no ±∞). The cheap
    /// health check run on losses and gradients to catch numeric
    /// divergence before it poisons a training run.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Number of non-finite (NaN or ±∞) elements, for diagnostics.
    pub fn count_nonfinite(&self) -> usize {
        self.data.iter().filter(|x| !x.is_finite()).count()
    }

    /// ReLU: `max(x, 0)` elementwise.
    pub fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }

    /// The threshold-ReLU of Eq. 1: `clip(x, 0, mu)` elementwise.
    ///
    /// This is the DNN activation the paper trains with a *trainable*
    /// threshold `mu`.
    pub fn clip(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Row-wise argmax for a rank-2 tensor `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        assert!(cols > 0, "argmax_rows requires at least one column");
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Numerically-stable row-wise softmax for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Self {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (c, &x) in row.iter().enumerate() {
                let e = (x - m).exp();
                out[r * cols + c] = e;
                denom += e;
            }
            for c in 0..cols {
                out[r * cols + c] /= denom;
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Numerically-stable row-wise log-softmax for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn log_softmax_rows(&self) -> Self {
        assert_eq!(self.rank(), 2, "log_softmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for (c, &x) in row.iter().enumerate() {
                out[r * cols + c] = x - lse;
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor {
            shape: vec![cols, rows],
            data: out,
        }
    }

    /// Sums a rank-2 tensor over its rows, producing a `[cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Self {
        assert_eq!(self.rank(), 2, "sum_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; cols];
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(&self.data[r * cols..(r + 1) * cols]) {
                *o += v;
            }
        }
        Tensor {
            shape: vec![cols],
            data: out,
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_finite_catches_nan_and_infinities() {
        let mut t = Tensor::zeros(&[2, 2]);
        assert!(t.all_finite());
        assert_eq!(t.count_nonfinite(), 0);
        t.data_mut()[1] = f32::NAN;
        t.data_mut()[3] = f32::INFINITY;
        assert!(!t.all_finite());
        assert_eq!(t.count_nonfinite(), 2);
        t.data_mut()[1] = 0.0;
        t.data_mut()[3] = f32::NEG_INFINITY;
        assert!(!t.all_finite());
        assert_eq!(t.count_nonfinite(), 1);
    }

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full(&[2, 2], 7.5);
        assert!(f.data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn reshape_round_trip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[0, 0, 3]), 3.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[0, 2]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.norm_sq(), 14.0);
        assert_eq!(t.count_nonzero(), 3);
    }

    #[test]
    fn clip_is_threshold_relu() {
        let t = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        let y = t.clip(0.0, 1.0);
        assert_eq!(y.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_slice(&[-3.0, 0.0, 2.0]);
        assert_eq!(t.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Huge logits must not overflow.
        assert!(s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0, 0.1, -0.1], &[2, 3]).unwrap();
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows();
        for (a, b) in ls.data().iter().zip(s.data()) {
            assert!((a.exp() - b).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn sum_rows_reduces_first_axis() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let s = t.sum_rows();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn slice_then_concat_is_identity() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[4, 2, 3]).unwrap();
        let a = t.slice_batch(0, 1);
        let b = t.slice_batch(1, 3);
        let c = t.slice_batch(3, 4);
        assert_eq!(a.shape(), &[1, 2, 3]);
        assert_eq!(b.shape(), &[2, 2, 3]);
        assert_eq!(b.data(), &t.data()[6..18]);
        assert_eq!(Tensor::concat_batch(&[a, b, c]), t);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_batch_rejects_bad_range() {
        let t = Tensor::zeros(&[2, 3]);
        let _ = t.slice_batch(1, 3);
    }

    #[test]
    fn reset_shaped_reuses_capacity() {
        let mut t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[4, 6]).unwrap();
        let cap = t.data.capacity();
        t.reset_shaped(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert_eq!(t.data.capacity(), cap);
        // Shrinking then regrowing within the old capacity must not allocate.
        t.reset_shaped(&[2]);
        t.reset_shaped(&[4, 6]);
        assert_eq!(t.data.capacity(), cap);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let mut dst = Tensor::zeros(&[10]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "trailing shapes disagree")]
    fn concat_batch_rejects_mixed_shapes() {
        let a = Tensor::zeros(&[1, 3]);
        let b = Tensor::zeros(&[1, 4]);
        let _ = Tensor::concat_batch(&[a, b]);
    }
}
