//! 2-d convolution via im2col, with full backward passes.
//!
//! Layout conventions:
//!
//! * activations: `[N, C, H, W]` (batch, channels, height, width)
//! * convolution weights: `[F, C, KH, KW]` (filters first)
//!
//! The forward pass lowers the input to a `[N·OH·OW, C·KH·KW]` column matrix
//! ([`im2col`]) and reduces the convolution to one matrix multiplication.
//! The backward pass reuses the same lowering: the weight gradient is a
//! `colsᵀ · grad` product and the input gradient is scattered back with
//! [`col2im`].

use serde::{Deserialize, Serialize};

use crate::{matmul, matmul_transpose_a, parallel, PackedWeights, Tensor};

/// Geometry of a 2-d convolution (square stride/padding, arbitrary kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl ConvGeometry {
    /// A square kernel with the given side, stride and padding.
    pub fn square(k: usize, stride: usize, padding: usize) -> Self {
        ConvGeometry {
            kh: k,
            kw: k,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input or `stride` is 0.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(self.stride > 0, "convolution stride must be positive");
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "kernel {}x{} does not fit padded input {}x{}",
            self.kh,
            self.kw,
            ph,
            pw
        );
        (
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        )
    }
}

/// Lowers `input: [N, C, H, W]` into columns `[N·OH·OW, C·KH·KW]`.
///
/// Each output row holds the receptive field of one output pixel; zero
/// padding appears as literal zeros.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or the geometry does not fit.
pub fn im2col(input: &Tensor, geo: ConvGeometry) -> Tensor {
    let mut cols = Vec::new();
    let (rows, ckk) = im2col_into(input, geo, &mut cols);
    Tensor::from_vec(cols, &[rows, ckk]).expect("im2col length by construction")
}

/// [`im2col`] writing into a caller-owned buffer (cleared and resized in
/// place), returning `(rows, ckk)` of the `[N·OH·OW, C·KH·KW]` matrix it
/// filled. Steady-state callers reuse the buffer's capacity and allocate
/// nothing.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or the geometry does not fit.
pub fn im2col_into(input: &Tensor, geo: ConvGeometry, cols: &mut Vec<f32>) -> (usize, usize) {
    let [n, c, h, w] = dims4(input, "im2col input");
    let (oh, ow) = geo.output_hw(h, w);
    let ckk = c * geo.kh * geo.kw;
    let _span = ull_obs::span("tensor.im2col");
    ull_obs::counter_add(
        "tensor.im2col.bytes",
        (n * oh * ow * ckk * std::mem::size_of::<f32>()) as u64,
    );
    cols.clear();
    cols.resize(n * oh * ow * ckk, 0.0);
    let data = input.data();
    let pad = geo.padding as isize;
    // One batch image per work item: image `b` owns the contiguous column
    // rows `[b·OH·OW, (b+1)·OH·OW)`, and every written value depends only
    // on the input, so the result is identical for any thread count.
    parallel::par_chunks_mut(cols, oh * ow * ckk, |b, image_cols| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * ckk;
                let iy0 = (oy * geo.stride) as isize - pad;
                let ix0 = (ox * geo.stride) as isize - pad;
                for ch in 0..c {
                    let plane = (b * c + ch) * h * w;
                    for ky in 0..geo.kh {
                        let iy = iy0 + ky as isize;
                        let dst = row + (ch * geo.kh + ky) * geo.kw;
                        if iy < 0 || iy >= h as isize {
                            continue; // padding row stays zero
                        }
                        let src_row = plane + iy as usize * w;
                        for kx in 0..geo.kw {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            image_cols[dst + kx] = data[src_row + ix as usize];
                        }
                    }
                }
            }
        }
    });
    (n * oh * ow, ckk)
}

/// Inverse scatter of [`im2col`]: accumulates columns back into `[N, C, H, W]`.
///
/// Overlapping receptive fields *sum* their contributions, which is exactly
/// the adjoint of `im2col` — this is what conv backward needs.
///
/// # Panics
///
/// Panics if `cols` does not have the shape `im2col` would produce for the
/// given image dimensions.
pub fn col2im(cols: &Tensor, n: usize, c: usize, h: usize, w: usize, geo: ConvGeometry) -> Tensor {
    let (oh, ow) = geo.output_hw(h, w);
    let ckk = c * geo.kh * geo.kw;
    assert_eq!(
        cols.shape(),
        &[n * oh * ow, ckk],
        "col2im: column matrix has wrong shape"
    );
    let _span = ull_obs::span("tensor.col2im");
    ull_obs::counter_add(
        "tensor.col2im.bytes",
        (cols.len() * std::mem::size_of::<f32>()) as u64,
    );
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    let pad = geo.padding as isize;
    // One batch image per work item: image `b` only accumulates from its
    // own column rows, and the oy/ox/ky/kx scatter order within an image
    // matches the serial loop, so overlapping-field sums are bit-identical
    // for any thread count.
    parallel::par_chunks_mut(&mut out, c * h * w, |b, image_out| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * ckk;
                let iy0 = (oy * geo.stride) as isize - pad;
                let ix0 = (ox * geo.stride) as isize - pad;
                for ch in 0..c {
                    let plane = ch * h * w;
                    for ky in 0..geo.kh {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src = row + (ch * geo.kh + ky) * geo.kw;
                        let dst_row = plane + iy as usize * w;
                        for kx in 0..geo.kw {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            image_out[dst_row + ix as usize] += data[src + kx];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, h, w]).expect("col2im length by construction")
}

/// Forward 2-d convolution: `input [N,C,H,W] * weight [F,C,KH,KW] (+ bias [F])`.
///
/// Returns `[N, F, OH, OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, geo: ConvGeometry) -> Tensor {
    let mut scratch = ConvScratch::default();
    let mut out = Tensor::default();
    conv2d_into(input, weight, bias, geo, &mut scratch, &mut out);
    out
}

/// Reusable intermediate buffers for [`conv2d_into`]: the im2col column
/// matrix and the `[N·OH·OW, F]` GEMM product. Keeping one per conv node in
/// the SNN step workspace removes the two largest per-step allocations.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    cols: Vec<f32>,
    prod: Vec<f32>,
}

/// [`conv2d`] writing into caller-owned scratch and output buffers (resized
/// in place). Steady-state callers allocate nothing; results are
/// bit-identical to [`conv2d`], which is this function with fresh buffers.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geo: ConvGeometry,
    scratch: &mut ConvScratch,
    out: &mut Tensor,
) {
    let [n, c, h, w] = dims4(input, "conv2d input");
    let [f, wc, kh, kw] = dims4(weight, "conv2d weight");
    assert_eq!(
        c, wc,
        "conv2d: input has {c} channels but weight expects {wc}"
    );
    assert_eq!(
        (kh, kw),
        (geo.kh, geo.kw),
        "conv2d: weight kernel disagrees with geometry"
    );
    let _span = ull_obs::span("tensor.conv2d");
    let (oh, ow) = geo.output_hw(h, w);
    let (rows, ckk) = im2col_into(input, geo, &mut scratch.cols);
    scratch.prod.clear();
    scratch.prod.resize(rows * f, 0.0);
    // Weights are `[F, C, KH, KW]` row-major, which *is* the `[F, CKK]`
    // matrix the GEMM wants — no reshape copy needed.
    // [N·OH·OW, CKK] x [F, CKK]ᵀ -> [N·OH·OW, F]
    crate::matmul::matmul_tb_raw(
        &scratch.cols,
        rows,
        ckk,
        weight.data(),
        f,
        &mut scratch.prod,
    );
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[f], "conv2d: bias must have shape [F]");
        let bd = b.data();
        for row in scratch.prod.chunks_mut(f) {
            for (x, &bv) in row.iter_mut().zip(bd) {
                *x += bv;
            }
        }
    }
    rows_to_nchw_into(&scratch.prod, n, f, oh, ow, out);
}

/// [`conv2d_into`] over a weight bank packed once by
/// [`PackedWeights::pack_conv`]. The im2col lowering and bias/NCHW epilogue
/// are identical; only the GEMM reads the weight panels from the packed
/// layout. Results are bit-identical to [`conv2d_into`] for every input,
/// sparsity and thread count (each output element accumulates the same
/// terms in the same ascending-k order — see [`crate::packed`]).
///
/// # Panics
///
/// Panics on rank or channel mismatches, or if `weight` was not packed by
/// [`PackedWeights::pack_conv`] with a filter bank matching `geo` and the
/// input's channel count.
pub fn conv2d_packed_into(
    input: &Tensor,
    weight: &PackedWeights,
    bias: Option<&Tensor>,
    geo: ConvGeometry,
    scratch: &mut ConvScratch,
    out: &mut Tensor,
) {
    let [n, c, h, w] = dims4(input, "conv2d input");
    let [f, wc, kh, kw] = weight
        .conv_dims()
        .expect("conv2d_packed_into needs a pack_conv-packed weight bank");
    assert_eq!(
        c, wc,
        "conv2d: input has {c} channels but weight expects {wc}"
    );
    assert_eq!(
        (kh, kw),
        (geo.kh, geo.kw),
        "conv2d: weight kernel disagrees with geometry"
    );
    let _span = ull_obs::span("tensor.conv2d");
    let (oh, ow) = geo.output_hw(h, w);
    let (rows, ckk) = im2col_into(input, geo, &mut scratch.cols);
    debug_assert_eq!(ckk, weight.reduction_len());
    scratch.prod.clear();
    scratch.prod.resize(rows * f, 0.0);
    // [N·OH·OW, CKK] x packed [F, CKK]ᵀ -> [N·OH·OW, F]
    crate::packed::packed_gemm_raw(
        &scratch.cols,
        rows,
        weight,
        &mut scratch.prod,
        "tensor.matmul_tb_packed",
    );
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[f], "conv2d: bias must have shape [F]");
        let bd = b.data();
        for row in scratch.prod.chunks_mut(f) {
            for (x, &bv) in row.iter_mut().zip(bd) {
                *x += bv;
            }
        }
    }
    rows_to_nchw_into(&scratch.prod, n, f, oh, ow, out);
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
///
/// `grad_out` must be `[N, F, OH, OW]`. Returns `(d_input, d_weight, d_bias)`
/// with the shapes of `input`, `weight` and `[F]` respectively.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geo: ConvGeometry,
) -> (Tensor, Tensor, Tensor) {
    let [n, c, h, w] = dims4(input, "conv2d_backward input");
    let [f, _, kh, kw] = dims4(weight, "conv2d_backward weight");
    let (oh, ow) = geo.output_hw(h, w);
    assert_eq!(
        grad_out.shape(),
        &[n, f, oh, ow],
        "conv2d_backward: grad_out shape mismatch"
    );
    let _span = ull_obs::span("tensor.conv2d_backward");
    let cols = im2col(input, geo);
    let g2 = nchw_to_rows(grad_out); // [N·OH·OW, F]
    let w2 = weight
        .reshape(&[f, c * kh * kw])
        .expect("weight reshape to [F, CKK]");
    // dW = g2ᵀ · cols : [F, CKK]
    let dw = matmul_transpose_a(&g2, &cols)
        .reshape(&[f, c, kh, kw])
        .expect("dweight reshape");
    // db = column sums of g2
    let db = g2.sum_rows();
    // dcols = g2 · w2 : [N·OH·OW, CKK]
    let dcols = matmul(&g2, &w2);
    let dx = col2im(&dcols, n, c, h, w, geo);
    (dx, dw, db)
}

/// Permutes `[N, F, OH, OW]` into the row matrix `[N·OH·OW, F]`.
///
/// # Panics
///
/// Panics if `t` is not rank 4.
pub fn nchw_to_rows(t: &Tensor) -> Tensor {
    let [n, f, oh, ow] = dims4(t, "nchw_to_rows");
    let mut out = vec![0.0f32; t.len()];
    let data = t.data();
    for b in 0..n {
        for ch in 0..f {
            let plane = (b * f + ch) * oh * ow;
            for p in 0..oh * ow {
                out[(b * oh * ow + p) * f + ch] = data[plane + p];
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, f]).expect("nchw_to_rows length")
}

/// Inverse of [`nchw_to_rows`]: `[N·OH·OW, F]` back to `[N, F, OH, OW]`.
///
/// # Panics
///
/// Panics if the row count does not equal `n·oh·ow` or the width is not `f`.
pub fn rows_to_nchw(rows: &Tensor, n: usize, f: usize, oh: usize, ow: usize) -> Tensor {
    assert_eq!(
        rows.shape(),
        &[n * oh * ow, f],
        "rows_to_nchw: shape mismatch"
    );
    let mut out = Tensor::default();
    rows_to_nchw_into(rows.data(), n, f, oh, ow, &mut out);
    out
}

/// [`rows_to_nchw`] over a raw `[N·OH·OW, F]` slice, writing into a
/// caller-owned output tensor (resized in place, allocation-free at steady
/// state).
///
/// # Panics
///
/// Panics if `data.len() != n·f·oh·ow`.
pub fn rows_to_nchw_into(data: &[f32], n: usize, f: usize, oh: usize, ow: usize, out: &mut Tensor) {
    assert_eq!(data.len(), n * f * oh * ow, "rows_to_nchw: length mismatch");
    out.reset_shaped(&[n, f, oh, ow]);
    let od = out.data_mut();
    for b in 0..n {
        for p in 0..oh * ow {
            let src = (b * oh * ow + p) * f;
            for ch in 0..f {
                od[(b * f + ch) * oh * ow + p] = data[src + ch];
            }
        }
    }
}

fn dims4(t: &Tensor, what: &str) -> [usize; 4] {
    assert_eq!(
        t.rank(),
        4,
        "{what} must be rank 4, got shape {:?}",
        t.shape()
    );
    [t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|x| x as f32 * 0.1 - 1.5).collect(), shape).unwrap()
    }

    /// Direct (non-lowered) convolution for cross-checking.
    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        geo: ConvGeometry,
    ) -> Tensor {
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let f = weight.shape()[0];
        let (oh, ow) = geo.output_hw(h, w);
        let mut out = Tensor::zeros(&[n, f, oh, ow]);
        for b in 0..n {
            for fi in 0..f {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |bb| bb.data()[fi]);
                        for ch in 0..c {
                            for ky in 0..geo.kh {
                                for kx in 0..geo.kw {
                                    let iy = (oy * geo.stride + ky) as isize - geo.padding as isize;
                                    let ix = (ox * geo.stride + kx) as isize - geo.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[b, ch, iy as usize, ix as usize])
                                        * weight.at(&[fi, ch, ky, kx]);
                                }
                            }
                        }
                        out.set(&[b, fi, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn output_geometry() {
        let g = ConvGeometry::square(3, 1, 1);
        assert_eq!(g.output_hw(32, 32), (32, 32));
        let g2 = ConvGeometry::square(3, 2, 1);
        assert_eq!(g2.output_hw(8, 8), (4, 4));
        let g3 = ConvGeometry::square(1, 1, 0);
        assert_eq!(g3.output_hw(5, 7), (5, 7));
    }

    #[test]
    fn conv_matches_naive_no_padding() {
        let x = seq_tensor(&[2, 3, 5, 5]);
        let w = seq_tensor(&[4, 3, 3, 3]);
        let geo = ConvGeometry::square(3, 1, 0);
        assert_close(
            &conv2d(&x, &w, None, geo),
            &naive_conv(&x, &w, None, geo),
            1e-4,
        );
    }

    #[test]
    fn conv_matches_naive_with_padding_stride_bias() {
        let x = seq_tensor(&[1, 2, 6, 6]);
        let w = seq_tensor(&[3, 2, 3, 3]);
        let b = Tensor::from_slice(&[0.5, -0.25, 1.0]);
        let geo = ConvGeometry::square(3, 2, 1);
        assert_close(
            &conv2d(&x, &w, Some(&b), geo),
            &naive_conv(&x, &w, Some(&b), geo),
            1e-4,
        );
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        let x = seq_tensor(&[1, 2, 3, 3]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap();
        let geo = ConvGeometry::square(1, 1, 0);
        let y = conv2d(&x, &w, None, geo);
        assert_close(&y, &x, 1e-6);
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let geo = ConvGeometry::square(3, 1, 1);
        let x = seq_tensor(&[1, 2, 4, 4]);
        let cols = im2col(&x, geo);
        let y = seq_tensor(&[cols.shape()[0], cols.shape()[1]]);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, 1, 2, 4, 4, geo);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let geo = ConvGeometry::square(3, 1, 1);
        let x = seq_tensor(&[1, 2, 4, 4]);
        let w = seq_tensor(&[2, 2, 3, 3]);
        let b = Tensor::from_slice(&[0.1, -0.2]);
        let y = conv2d(&x, &w, Some(&b), geo);
        // Loss = sum(y); grad_out = ones.
        let go = Tensor::ones(y.shape());
        let (dx, dw, db) = conv2d_backward(&x, &w, &go, geo);
        let eps = 1e-2;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, Some(b), geo).sum();
        // Check a scattering of coordinates in each gradient.
        for &i in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "dx[{i}]: fd {fd} vs {}",
                dx.data()[i]
            );
        }
        for &i in &[0usize, 7, 20, 35] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (fd - dw.data()[i]).abs() < 2e-2,
                "dw[{i}]: fd {fd} vs {}",
                dw.data()[i]
            );
        }
        for i in 0..2 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (fd - db.data()[i]).abs() < 2e-2,
                "db[{i}]: fd {fd} vs {}",
                db.data()[i]
            );
        }
    }

    #[test]
    fn nchw_rows_round_trip() {
        let t = seq_tensor(&[2, 3, 2, 2]);
        let rows = nchw_to_rows(&t);
        assert_eq!(rows.shape(), &[8, 3]);
        let back = rows_to_nchw(&rows, 2, 3, 2, 2);
        assert_close(&back, &t, 0.0);
    }

    #[test]
    fn packed_conv_is_bit_identical_to_unpacked() {
        let x = seq_tensor(&[2, 3, 6, 6]);
        let w = seq_tensor(&[5, 3, 3, 3]);
        let b = Tensor::from_slice(&[0.5, -0.25, 1.0, 0.0, -1.5]);
        for geo in [ConvGeometry::square(3, 1, 1), ConvGeometry::square(3, 2, 0)] {
            let want = conv2d(&x, &w, Some(&b), geo);
            let packed = PackedWeights::pack_conv(&w);
            let mut scratch = ConvScratch::default();
            let mut got = Tensor::default();
            conv2d_packed_into(&x, &packed, Some(&b), geo, &mut scratch, &mut got);
            assert_eq!(got.shape(), want.shape());
            for (a, e) in got.data().iter().zip(want.data()) {
                assert_eq!(a.to_bits(), e.to_bits(), "{a} vs {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn packed_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = PackedWeights::pack_conv(&Tensor::zeros(&[2, 4, 3, 3]));
        let mut scratch = ConvScratch::default();
        let mut out = Tensor::default();
        conv2d_packed_into(
            &x,
            &w,
            None,
            ConvGeometry::square(3, 1, 1),
            &mut scratch,
            &mut out,
        );
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        let _ = conv2d(&x, &w, None, ConvGeometry::square(3, 1, 1));
    }
}
