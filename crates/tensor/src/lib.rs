//! Dense `f32` tensor kernels for the `ultralow-snn` workspace.
//!
//! This crate is the numeric substrate for the reproduction of
//! *"Can Deep Neural Networks be Converted to Ultra Low-Latency Spiking
//! Neural Networks?"* (Datta & Beerel, DATE 2022). It provides a contiguous
//! row-major [`Tensor`] with the operations the paper's models need:
//!
//! * elementwise arithmetic and mapping ([`Tensor::add`], [`Tensor::map`], …)
//! * matrix multiplication ([`matmul`])
//! * 2-d convolution via im2col with full backward passes ([`conv`])
//! * event-driven sparse kernels over compact spike batches ([`events`]),
//!   bit-identical to the dense path but scaling with activity
//! * weight-stationary packed dense kernels ([`packed`]) — weights laid out
//!   once per network, bit-identical to the unpacked kernels

//! * max / average pooling with backward passes ([`pool`])
//! * reductions, softmax, and clipping (the threshold-ReLU of Eq. 1)
//! * statistics used by the conversion algorithm: percentiles and
//!   histograms of pre-activation values ([`stats`])
//! * seeded weight initialisation ([`init`])
//!
//! Everything is deterministic given a seed; there is no `unsafe` and no
//! external BLAS, so results are bit-reproducible across runs — a property
//! the experiment harness relies on. The hot kernels are data-parallel
//! over a dependency-free `std::thread` pool ([`parallel`], tuned with the
//! `ULL_THREADS` environment variable), but partitioning preserves each
//! output element's serial accumulation order, so results are also
//! bit-identical across thread counts.
//!
//! # Example
//!
//! ```
//! use ull_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ull_tensor::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), ull_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ops;
mod tensor;

pub mod conv;
pub mod events;
pub mod init;
pub mod matmul;
pub mod packed;
pub mod parallel;
pub mod pool;
pub mod stats;

pub use error::TensorError;
pub use events::{conv2d_events, matmul_tb_events, scan_uniform_density, SpikeBatch};
pub use matmul::{matmul, matmul_transpose_a, matmul_transpose_b, matmul_transpose_b_into};
pub use packed::{
    matmul_packed, matmul_tb_packed, matmul_tb_packed_into, packed_enabled, set_packed,
    tensor_fingerprint, PackLayout, PackedWeights,
};
pub use tensor::Tensor;

/// Convenience alias for results returned by fallible tensor constructors.
pub type Result<T> = std::result::Result<T, TensorError>;
