//! Matrix multiplication kernels.
//!
//! Three variants cover the needs of forward and backward passes without
//! materialising transposes:
//!
//! * [`matmul`] — `C = A · B`
//! * [`matmul_transpose_a`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_transpose_b`] — `C = A · Bᵀ` (input gradients)
//!
//! All kernels use the cache-friendly `i-k-j` loop order over contiguous
//! rows, which is the fastest portable ordering for row-major data without
//! explicit blocking or SIMD intrinsics.
//!
//! Output rows are independent, so each kernel distributes contiguous
//! row blocks over [`crate::parallel`]. Every output element is
//! accumulated in the same order as the serial loop regardless of the
//! thread count, so results are bit-identical for any `ULL_THREADS`.
//!
//! Each kernel opens an `ull_obs` span and adds its *nominal* `m·k·n`
//! multiply-accumulate count to the `tensor.macs` counter. Because every
//! kernel skips zero lhs entries, the *executed* accumulate count can be
//! far lower on sparse spike matrices; that measured count goes to the
//! separate `tensor.acs` counter so the gap is observable (it is what the
//! `ull-energy` AC model predicts from spike rates). With observability
//! disabled each kernel costs one atomic load per call.

use crate::parallel;
use crate::Tensor;

/// Rows per parallel work item: ~4 blocks per worker balances load without
/// making the chunk queue hot. Block size never affects results — each
/// output row is accumulated independently in serial order.
pub(crate) fn row_block(rows: usize) -> usize {
    rows.div_ceil(parallel::num_threads().saturating_mul(4).max(1))
        .max(1)
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ull_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), ull_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul: inner dims disagree ({k} vs {k2})");
    let _span = ull_obs::span("tensor.matmul");
    ull_obs::counter_add("tensor.macs", (m * k * n) as u64);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let block = row_block(m);
    parallel::par_chunks_mut(&mut out, block * n, |ci, chunk| {
        let i0 = ci * block;
        let mut executed = 0u64;
        for (ri, orow) in chunk.chunks_mut(n).enumerate() {
            let i = i0 + ri;
            let arow = &ad[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue; // spike matrices are sparse; skipping zeros is the AC model
                }
                executed += n as u64;
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        ull_obs::counter_add("tensor.acs", executed);
    });
    Tensor::from_vec(out, &[m, n]).expect("matmul output length is m*n by construction")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` giving `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the leading dimensions disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_transpose_a lhs");
    let (k2, n) = dims2(b, "matmul_transpose_a rhs");
    assert_eq!(
        k, k2,
        "matmul_transpose_a: leading dims disagree ({k} vs {k2})"
    );
    let _span = ull_obs::span("tensor.matmul_ta");
    ull_obs::counter_add("tensor.macs", (m * k * n) as u64);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // Workers own disjoint output-row blocks; the p loop stays outermost
    // inside each block, so every element accumulates over p in ascending
    // order exactly as the serial single-block loop did.
    let block = row_block(m);
    parallel::par_chunks_mut(&mut out, block * n, |ci, chunk| {
        let i0 = ci * block;
        let rows = chunk.len() / n;
        let mut executed = 0u64;
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for ri in 0..rows {
                let av = arow[i0 + ri];
                if av == 0.0 {
                    continue;
                }
                executed += n as u64;
                let orow = &mut chunk[ri * n..(ri + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        ull_obs::counter_add("tensor.acs", executed);
    });
    Tensor::from_vec(out, &[m, n]).expect("matmul_transpose_a output length is m*n")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` giving `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the trailing dimensions disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    matmul_transpose_b_into(a, b, &mut out);
    out
}

/// [`matmul_transpose_b`] writing into a caller-owned output tensor, which
/// is resized in place — steady-state callers (the SNN step workspace)
/// therefore allocate nothing.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the trailing dimensions disagree.
pub fn matmul_transpose_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = dims2(a, "matmul_transpose_b lhs");
    let (n, k2) = dims2(b, "matmul_transpose_b rhs");
    assert_eq!(
        k, k2,
        "matmul_transpose_b: trailing dims disagree ({k} vs {k2})"
    );
    out.reset_shaped(&[m, n]);
    matmul_tb_raw(a.data(), m, k, b.data(), n, out.data_mut());
}

/// Row-major `C = A · Bᵀ` over raw slices: `ad: [m, k]`, `bd: [n, k]`,
/// `out: [m, n]`. The shared core of [`matmul_transpose_b_into`] and
/// [`crate::conv::conv2d_into`] (whose scratch buffers are plain `Vec`s).
///
/// Zero lhs entries are skipped; each output element still accumulates its
/// non-zero terms in ascending `k` order, so results are bit-identical to
/// the skip-free loop whenever the rhs is finite (`0·finite == ±0.0`, and
/// `acc + ±0.0` leaves `acc` unchanged for every `acc` the loop can hold).
pub(crate) fn matmul_tb_raw(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(ad.len(), m * k, "matmul_tb_raw: lhs length");
    assert_eq!(bd.len(), n * k, "matmul_tb_raw: rhs length");
    assert_eq!(out.len(), m * n, "matmul_tb_raw: out length");
    let _span = ull_obs::span("tensor.matmul_tb");
    ull_obs::counter_add("tensor.macs", (m * k * n) as u64);
    let block = row_block(m);
    parallel::par_chunks_mut(out, block * n, |ci, chunk| {
        let i0 = ci * block;
        let mut executed = 0u64;
        for (ri, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = &ad[(i0 + ri) * k..(i0 + ri + 1) * k];
            let nz = arow.iter().filter(|&&av| av != 0.0).count() as u64;
            executed += nz * n as u64;
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        ull_obs::counter_add("tensor.acs", executed);
    });
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{what} must be rank 2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        // Cheap deterministic LCG; avoids pulling rand into unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = rand_tensor(&[4, 4], 1);
        let i = Tensor::eye(4);
        assert_close(&matmul(&a, &i), &a, 1e-6);
        assert_close(&matmul(&i, &a), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_tensor(&[5, 7], 2);
        let b = rand_tensor(&[7, 3], 3);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = rand_tensor(&[1, 9], 4);
        let b = rand_tensor(&[9, 1], 5);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 1]);
        assert_close(&c, &naive(&a, &b), 1e-5);
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        let a = rand_tensor(&[6, 4], 6);
        let b = rand_tensor(&[6, 5], 7);
        assert_close(
            &matmul_transpose_a(&a, &b),
            &matmul(&a.transpose(), &b),
            1e-5,
        );
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        let a = rand_tensor(&[3, 8], 8);
        let b = rand_tensor(&[5, 8], 9);
        assert_close(
            &matmul_transpose_b(&a, &b),
            &matmul(&a, &b.transpose()),
            1e-5,
        );
    }

    #[test]
    fn zero_rows_are_skipped_correctly() {
        // Sparse spike-like lhs: results must still be exact.
        let mut a = rand_tensor(&[4, 6], 10);
        for j in 0..6 {
            a.set(&[1, j], 0.0);
            a.set(&[3, j], 0.0);
        }
        let b = rand_tensor(&[6, 3], 11);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn transpose_b_zero_skip_is_bit_identical_on_sparse_lhs() {
        // Regression: the spike-input path is A·Wᵀ with a mostly-zero A;
        // skipping the zeros must not change a single bit versus the
        // skip-free reference accumulation.
        let naive_tb = |a: &Tensor, b: &Tensor| {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let n = b.shape()[0];
            let mut out = Tensor::zeros(&[m, n]);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a.at(&[i, p]) * b.at(&[j, p]);
                    }
                    out.set(&[i, j], acc);
                }
            }
            out
        };
        let mut a = rand_tensor(&[6, 9], 12);
        // Spike-like lhs: ~80% exact zeros, the rest one common amplitude.
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = if (i * 2654435761) % 5 == 0 { 0.75 } else { 0.0 };
        }
        let b = rand_tensor(&[4, 9], 13);
        let got = matmul_transpose_b(&a, &b);
        let want = naive_tb(&a, &b);
        assert_eq!(got.shape(), want.shape());
        for (x, y) in got.data().iter().zip(want.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_b_into_reuses_buffer() {
        let a = rand_tensor(&[3, 5], 20);
        let b = rand_tensor(&[4, 5], 21);
        let mut out = Tensor::zeros(&[100]);
        matmul_transpose_b_into(&a, &b, &mut out);
        assert_eq!(out, matmul_transpose_b(&a, &b));
    }

    #[test]
    fn executed_acs_counter_reflects_sparsity() {
        let _obs = ull_obs::test_lock();
        let _guard = parallel::override_lock();
        parallel::set_threads(1);
        ull_obs::reset();
        ull_obs::set_enabled(true);
        let mut a = rand_tensor(&[4, 10], 30);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0 } else { 0.0 }; // exactly half the lhs is zero
        }
        let b = rand_tensor(&[10, 6], 31);
        let bt = rand_tensor(&[6, 10], 32);
        let _ = matmul(&a, &b);
        let _ = matmul_transpose_b(&a, &bt);
        ull_obs::set_enabled(false);
        let snap = ull_obs::snapshot();
        // Nominal: 2 · (4·10·6); executed: half of that in each kernel.
        assert_eq!(snap.counters["tensor.macs"], 2 * 4 * 10 * 6);
        assert_eq!(snap.counters["tensor.acs"], 4 * 10 * 6);
        parallel::set_threads(0);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}
