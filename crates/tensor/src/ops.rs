//! Operator overloads and axis-wise reductions.
//!
//! `&Tensor + &Tensor` etc. delegate to the elementwise methods; axis
//! reductions and slicing support the analysis tooling (per-channel
//! statistics, batch splitting).

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::Tensor;

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl Div for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        Tensor::div(self, rhs)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.add_scalar(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

impl Tensor {
    /// Sums over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, |acc, v| acc + v, 0.0)
    }

    /// Maximum over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, f32::max, f32::NEG_INFINITY)
    }

    /// Mean over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape()[axis] as f32;
        let mut t = self.sum_axis(axis);
        t.scale_in_place(1.0 / n);
        t
    }

    fn reduce_axis(&self, axis: usize, f: impl Fn(f32, f32) -> f32, init: f32) -> Tensor {
        let shape = self.shape();
        assert!(
            axis < shape.len(),
            "axis {axis} out of range for rank {}",
            shape.len()
        );
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape: Vec<usize> = shape[..axis].to_vec();
        out_shape.extend_from_slice(&shape[axis + 1..]);
        if out_shape.is_empty() {
            out_shape.push(1);
        }
        let mut out = vec![init; outer * inner];
        let data = self.data();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] = f(out[obase + i], data[base + i]);
                }
            }
        }
        Tensor::from_vec(out, &out_shape).expect("reduce_axis output length")
    }

    /// Extracts sample `i` of a batched `[N, …]` tensor as a `[…]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of range.
    pub fn select_batch(&self, i: usize) -> Tensor {
        assert!(self.rank() >= 1, "select_batch needs a batched tensor");
        let n = self.shape()[0];
        assert!(i < n, "batch index {i} out of range for {n}");
        let per: usize = self.shape()[1..].iter().product();
        let data = self.data()[i * per..(i + 1) * per].to_vec();
        let shape: Vec<usize> = if self.rank() == 1 {
            vec![1]
        } else {
            self.shape()[1..].to_vec()
        };
        Tensor::from_vec(data, &shape).expect("select_batch length")
    }

    /// Stacks same-shape tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let shape = items[0].shape();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for (i, t) in items.iter().enumerate() {
            assert_eq!(t.shape(), shape, "stack: item {i} shape mismatch");
            data.extend_from_slice(t.data());
        }
        let mut out_shape = vec![items.len()];
        out_shape.extend_from_slice(shape);
        Tensor::from_vec(data, &out_shape).expect("stack length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t22() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap()
    }

    #[test]
    fn operator_overloads() {
        let a = t22();
        let b = Tensor::ones(&[2, 2]);
        assert_eq!((&a + &b).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!((&a - &b).data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!((&a * &b).data(), a.data());
        assert_eq!((&a / &a).data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!((&a + 1.0).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn sum_axis_both_axes() {
        let a = t22();
        assert_eq!(a.sum_axis(0).data(), &[4.0, 6.0]);
        assert_eq!(a.sum_axis(1).data(), &[3.0, 7.0]);
    }

    #[test]
    fn max_and_mean_axis() {
        let a = t22();
        assert_eq!(a.max_axis(0).data(), &[3.0, 4.0]);
        assert_eq!(a.mean_axis(1).data(), &[1.5, 3.5]);
    }

    #[test]
    fn reduce_axis_on_rank3() {
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[2, 2, 2]).unwrap();
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 4.0, 10.0, 12.0]);
    }

    #[test]
    fn rank1_reduction_keeps_scalar_shape() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s = t.sum_axis(0);
        assert_eq!(s.shape(), &[1]);
        assert_eq!(s.data(), &[6.0]);
    }

    #[test]
    fn select_batch_extracts_sample() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]).unwrap();
        let s = t.select_batch(1);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_round_trips_with_select() {
        let a = t22();
        let b = Tensor::ones(&[2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.select_batch(0), a);
        assert_eq!(s.select_batch(1), b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn stack_rejects_mixed_shapes() {
        Tensor::stack(&[Tensor::zeros(&[2]), Tensor::zeros(&[3])]);
    }
}
