use std::error::Error;
use std::fmt;

/// Error type for fallible tensor constructors and reshaping operations.
///
/// Hot-path kernels (`matmul`, `conv2d`, elementwise ops) panic on shape
/// mismatch instead — a mismatched shape there is a programming error, and
/// the panic message names both shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor of shape {from:?} into shape {to:?}"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
