//! Offline stand-in for the `rand` crate.
//!
//! The crates-io registry is unreachable in this build environment, so the
//! workspace vendors the exact API subset it uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and dependency-free. Streams differ from upstream `rand`
//! (a different StdRng algorithm), but every consumer in this workspace
//! only relies on *seed-determinism*, not on specific streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of `Self` from uniform bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty, $std:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                loop {
                    let u = <$t as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * u;
                    // Guard the half-open contract against rounding at the
                    // upper edge.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                // Clamp guards the closed contract against rounding.
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    };
}

float_range!(f32, f32);
float_range!(f64, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Random number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw 256-bit generator state. Together with
        /// [`StdRng::from_state`] this lets callers persist a generator
        /// mid-stream (e.g. inside a training checkpoint) and later resume
        /// the *exact* random stream across process boundaries.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The restored generator continues the original stream exactly.
        ///
        /// An all-zero state is a fixed point of xoshiro256** (it would
        /// emit zeros forever); it cannot be produced by
        /// [`SeedableRng::seed_from_u64`] or by advancing a seeded
        /// generator, so it is rejected.
        ///
        /// # Panics
        ///
        /// Panics if `state` is all zeros.
        pub fn from_state(state: [u64; 4]) -> Self {
            assert!(
                state.iter().any(|&w| w != 0),
                "StdRng::from_state: all-zero state is degenerate"
            );
            StdRng { s: state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j: usize = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = rng.gen_range(0usize..=4);
            assert!(n <= 4);
            let m = rng.gen_range(3u64..9);
            assert!((3..9).contains(&m));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        // Advance mid-stream, snapshot, and keep drawing from the original.
        for _ in 0..37 {
            let _: u64 = a.gen();
        }
        let snapshot = a.state();
        let expected: Vec<u64> = (0..64).map(|_| a.gen::<u64>()).collect();
        // A generator rebuilt from the snapshot continues identically.
        let mut b = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..64).map(|_| b.gen::<u64>()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn from_state_rejects_degenerate_zero_state() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }
}
