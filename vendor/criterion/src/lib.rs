//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's `harness = false`
//! benches use — [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`/[`BenchmarkId::from_parameter`], `sample_size`,
//! `measurement_time`, `warm_up_time`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a plain
//! wall-clock timer. No statistics beyond median-of-samples and no HTML
//! reports; each benchmark prints one line:
//!
//! ```text
//! group/name  time: [median per iter]  (samples × iters)
//! ```
//!
//! When invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body runs exactly once so CI stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; holds the default timing configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo may forward; all ignored.
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--exact" | "--nocapture" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long each benchmark warms up before timing.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            warm_up_time: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = RunConfig {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.test_mode,
        };
        run_benchmark(name, &self.filter, config, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and timing overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Overrides the warm-up time for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    fn run_config(&self) -> RunConfig {
        RunConfig {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            test_mode: self.criterion.test_mode,
        }
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let config = self.run_config();
        run_benchmark(&full, &self.criterion.filter, config, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let config = self.run_config();
        run_benchmark(&full, &self.criterion.filter, config, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered purely from the parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations to execute for the current sample.
    iters: u64,
    /// Measured duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, preventing the optimiser from deleting its result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct RunConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

fn run_benchmark<F>(name: &str, filter: &Option<String>, config: RunConfig, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if config.test_mode {
        f(&mut bencher);
        println!("{name}: test-mode single pass ok");
        return;
    }

    // Warm-up: run with doubling iteration counts until the budget is
    // spent, which also calibrates iters-per-sample.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut bencher);
        if bencher.elapsed > Duration::ZERO {
            per_iter = bencher.elapsed / bencher.iters as u32;
        }
        if bencher.iters < u64::MAX / 2 {
            bencher.iters *= 2;
        }
    }

    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    bencher.iters = iters;
    for _ in 0..config.sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name}  time: [{}]  ({} samples x {} iters)",
        format_duration(median),
        config.sample_size,
        iters
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, in either the positional form
/// `criterion_group!(benches, target_a, target_b)` or the named form with
/// a `config = ...;` expression.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_quietly(config: RunConfig) -> u64 {
        let mut calls = 0u64;
        run_benchmark("self_test", &None, config, |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        calls
    }

    #[test]
    fn test_mode_runs_once() {
        let calls = run_quietly(RunConfig {
            sample_size: 10,
            measurement_time: Duration::from_millis(50),
            warm_up_time: Duration::from_millis(10),
            test_mode: true,
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn measurement_collects_samples() {
        let calls = run_quietly(RunConfig {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            test_mode: false,
        });
        assert!(calls > 5, "expected warm-up plus samples, got {calls}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut calls = 0u64;
        run_benchmark(
            "group/kernel",
            &Some("other".to_string()),
            RunConfig {
                sample_size: 5,
                measurement_time: Duration::from_millis(5),
                warm_up_time: Duration::from_millis(1),
                test_mode: false,
            },
            |b| {
                b.iter(|| {
                    calls += 1;
                })
            },
        );
        assert_eq!(calls, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).0, "4");
        assert_eq!(BenchmarkId::new("fwd", 8).0, "fwd/8");
    }
}
