//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with a
//! `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute and
//! `arg in strategy` bindings, range strategies over primitives,
//! [`collection::vec`] with fixed or ranged lengths, and
//! [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: inputs are drawn from an RNG
//! seeded deterministically from the test name and case index, so every
//! failure reproduces identically on re-run — report the printed case
//! number when filing one.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};

/// Generates values of an associated type from uniform randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

/// A strategy producing a fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, Strategy};
    use rand::rngs::StdRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size` (a `usize` for an exact
    /// length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                (self.size.lo..=self.size.hi_inclusive).sample_single(rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carried out of the case body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `cases` deterministic cases of a property; panics on the first
/// failure with enough context to reproduce it.
pub fn run_cases<F>(cases: u32, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let name_hash = fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = name_hash ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("property `{name}` failed on case {case}/{cases}: {e}");
        }
    }
}

/// Defines deterministic property tests; see the crate docs for the
/// supported subset of upstream syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(__config.cases, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __result
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// The usual glob import: strategies, config, and assertion macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f32..3.0, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n), "n = {}", n);
        }

        #[test]
        fn vec_lengths_match_request(
            fixed in collection::vec(0u64..10, 5),
            ranged in collection::vec(-1.0f64..1.0, 2..7),
        ) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((2..7).contains(&ranged.len()));
        }
    }

    // Default-config form (no inner attribute).
    proptest! {
        #[test]
        fn just_yields_constant(v in Just(42u32)) {
            prop_assert_eq!(v, 42);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<f32> = Vec::new();
        super::run_cases(8, "determinism_probe", |rng| {
            first.push(Strategy::generate(&(0.0f32..1.0), rng));
            Ok(())
        });
        let mut second: Vec<f32> = Vec::new();
        super::run_cases(8, "determinism_probe", |rng| {
            second.push(Strategy::generate(&(0.0f32..1.0), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
