//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON (compact and
//! pretty with two-space indent, matching serde_json's formatting) and
//! parses JSON back into it with a recursive-descent parser. Floats print
//! through Rust's shortest round-trip `Display` with a `.0` suffix when
//! the output would otherwise look integral, exactly like serde_json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a concrete deserializable type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json has no representation for NaN/infinities.
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    // serde_json always keeps floats visually float-typed.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                Some(b) => {
                    // Re-decode multi-byte UTF-8 starting at this byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b)?;
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> Result<usize, Error> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::new("invalid UTF-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(7)),
            ("b".to_string(), Value::F64(0.25)),
            (
                "c".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
            ("d".to_string(), Value::Str("x\"y\\z\n".to_string())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_uses_two_space_indent_and_colon_space() {
        let v = Value::Map(vec![("x".to_string(), Value::U64(7))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"x\": 7\n}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0, -2.5e-8, 1e20, f64::MIN_POSITIVE, 123456.789] {
            let text = to_string(&Value::F64(x)).unwrap();
            match from_str::<Value>(&text).unwrap() {
                Value::F64(y) => assert_eq!(x, y, "text {text}"),
                other => panic!("expected float, got {other:?} from {text}"),
            }
        }
        // Integral floats keep a `.0` marker like serde_json.
        assert_eq!(to_string(&Value::F64(7.0)).unwrap(), "7.0");
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, Value::Str("a\u{e9}\u{1F600}b".to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }
}
