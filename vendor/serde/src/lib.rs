//! Offline stand-in for `serde`.
//!
//! The real serde is unreachable in this build environment (no registry
//! access), so the workspace vendors a minimal replacement built around an
//! explicit value tree:
//!
//! * [`Value`] — the self-describing data model (JSON-shaped).
//! * [`Serialize`] — converts `Self` into a [`Value`].
//! * [`Deserialize`] — reconstructs `Self` from a [`Value`].
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the companion
//!   `serde_derive` proc-macro crate (feature `derive`), supporting named
//!   structs, tuple structs, and externally-tagged enums with unit, tuple,
//!   and struct variants, plus `#[serde(default)]` on fields.
//!
//! The representation matches serde_json's defaults (maps for structs,
//! `{"Variant": …}` external tagging) so documents written by this shim are
//! shaped like the ones real serde would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serialises into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples).
    Seq(Vec<Value>),
    /// Ordered map (structs, string-keyed maps). Insertion order is
    /// preserved so emitted documents are deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of the value, if it is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned-integer view of the value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed-integer view of the value, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a key in the entry list of a [`Value::Map`].
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialises `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialises `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization traits, mirroring upstream's module layout.
pub mod de {
    /// In this shim every [`Deserialize`](crate::Deserialize) type already
    /// owns its data, so `DeserializeOwned` is a plain alias.
    pub use crate::Deserialize as DeserializeOwned;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom(
                    format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom(
                    format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(
                        format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the string. Upstream serde borrows from the
    /// input instead; this shim's value tree is transient, so a leak is the
    /// only way to hand out `'static` data. Fine for the workspace's use
    /// (a handful of report/platform names per process), not for bulk data.
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("len checked")),
            other => type_err("single-char string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence for array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(<[T; N]>::try_from(parsed).expect("length checked above"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple sequence"))?;
        if s.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, got {}",
                s.len()
            )));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 3-tuple sequence"))?;
        if s.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3 elements, got {}",
                s.len()
            )));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the output is deterministic run-to-run.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        m.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        m.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn numeric_cross_width_is_lenient() {
        // An f32 written as an integer-valued number reads back fine.
        assert_eq!(f32::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::F64(3.0)).unwrap(), 3);
        assert!(u64::from_value(&Value::F64(3.5)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(2.0f32).to_value(), Value::F64(2.0));
        assert_eq!(
            Option::<f32>::from_value(&Value::F64(2.0)).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [0.1f32, 0.2, 0.3];
        assert_eq!(<[f32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = (1usize, 2.5f32);
        assert_eq!(<(usize, f32)>::from_value(&tup.to_value()).unwrap(), tup);
    }

    #[test]
    fn map_get_finds_keys() {
        let m = vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Null),
        ];
        assert_eq!(map_get(&m, "a"), Some(&Value::U64(1)));
        assert_eq!(map_get(&m, "c"), None);
    }
}
