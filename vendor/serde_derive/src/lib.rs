//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! registry is unreachable in this build environment). Supports the shapes
//! this workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(default)]`)
//! * tuple structs (newtype-transparent for arity 1, sequences otherwise)
//! * enums with unit, tuple, and struct variants, externally tagged like
//!   serde_json (`"Variant"` / `{"Variant": payload}`)
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored shim) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (vendored shim) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error literal"),
    }
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    default: bool,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Skips attributes starting at `i`; returns whether any was
/// `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while is_punct(tokens.get(*i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attr_is_serde_default(g) {
                has_default = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    has_default
}

fn attr_is_serde_default(attr: &Group) -> bool {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    if !is_ident(toks.first(), "serde") {
        return false;
    }
    if let Some(TokenTree::Group(inner)) = toks.get(1) {
        inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
    } else {
        false
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if is_ident(tokens.get(*i), "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1; // pub(crate) etc.
            }
        }
    }
}

/// Advances `i` past a type, stopping after the top-level `,` (or at end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if is_punct(tokens.get(i), '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item {
                name,
                kind: Kind::Struct(fields),
            })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item {
                name,
                kind: Kind::Enum(parse_variants(body)?),
            })
        }
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

fn parse_named_fields(body: &Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn tuple_arity(body: &Group) -> usize {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(body: &Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g))
            }
            _ => Fields::Unit,
        };
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn named_fields_to_map(fields: &[Field], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({access}{n})),",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => named_fields_to_map(fields, "&self."),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(""))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("ref __f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(""))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{n}: ref __b_{n}", n = f.name))
                                .collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), \
                                         ::serde::Serialize::to_value(__b_{n})),",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join("")
                            )
                        }
                    }
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{\
           fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Struct-literal body reading named fields out of map entries bound to `m`.
fn named_fields_from_map(type_name: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::custom(\
                     concat!({type_name:?}, \": missing field `\", {n:?}, \"`\")))"
                )
            };
            format!(
                "{n}: match ::serde::map_get(m, {n:?}) {{\
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\
                 ::std::option::Option::None => {missing}, }},"
            )
        })
        .collect();
    inits.join("")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits = named_fields_from_map(name, fields);
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                 concat!(\"struct \", {name:?}, \": expected map\")))?;\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?,"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                 concat!(\"tuple struct \", {name:?}, \": expected sequence\")))?;\
                 if s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"tuple struct arity mismatch\")); }}\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join("")
            )
        }
        Kind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                                .collect();
                            format!(
                                "{vn:?} => {{\
                                 let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence payload\"))?;\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"variant arity mismatch\")); }}\
                                 ::std::result::Result::Ok({name}::{vn}({elems})) }},",
                                elems = elems.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits = named_fields_from_map(vn, fields);
                            format!(
                                "{vn:?} => {{\
                                 let m = __payload.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map payload\"))?;\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\
                   {unit_arms}\
                   __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(concat!(\"unknown \", {name:?}, \" variant `{{}}`\"), __other))),\
                 }},\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\
                   let (__tag, __payload) = &__entries[0];\
                   match __tag.as_str() {{\
                     {tagged_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(concat!(\"unknown \", {name:?}, \" variant `{{}}`\"), __other))),\
                   }}\
                 }},\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                   concat!(\"enum \", {name:?}, \": expected string or single-entry map\"))),\
                 }}",
                unit_arms = unit_arms.join(""),
                tagged_arms = tagged_arms.join("")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
             {body} }} }}"
    )
}
