//! Facade crate for the ultra low-latency DNN→SNN conversion workspace
//! (Datta & Beerel, DATE 2022, reproduced in pure Rust).
//!
//! Re-exports every `ull-*` crate under a stable module name and bundles
//! the items the examples and downstream users touch most into
//! [`prelude`]:
//!
//! ```no_run
//! use ultralow_snn::prelude::*;
//!
//! let cfg = SynthCifarConfig::tiny(10);
//! let (train, test) = generate(&cfg);
//! let mut dnn = models::vgg_micro(cfg.classes, cfg.image_size, 0.5, 42);
//! let mut rng = seeded_rng(7);
//! let (report, _snn) =
//!     run_pipeline(&mut dnn, &train, &test, &PipelineConfig::small(2), &mut rng).unwrap();
//! println!("converted accuracy: {:.2} %", report.converted_accuracy * 100.0);
//! ```

pub use ull_core as core;
pub use ull_data as data;
pub use ull_energy as energy;
pub use ull_grad as grad;
pub use ull_nn as nn;
pub use ull_obs as obs;
pub use ull_robust as robust;
pub use ull_serve as serve;
pub use ull_snn as snn;
pub use ull_tensor as tensor;

/// The items most programs need: tensors, data generation, DNN training,
/// conversion (Algorithm 1 and baselines), SNN simulation, and energy
/// accounting.
pub mod prelude {
    pub use ull_core::{
        collect_preactivations, compute_loss, convert, convert_with_budget, delta_empirical,
        dnn_activation, find_scaling_factors, h_t_mu, k_mu, layer_error_reports, resume_pipeline,
        run_or_resume_pipeline, run_pipeline, run_pipeline_recoverable, scale_layers,
        snn_staircase, ConversionMethod, ConversionSummary, ConvertError, FaultKind, FaultPlan,
        LayerActivations, LayerScaling, PipelineConfig, PipelineError, PipelinePhase,
        PipelineReport, RecoveryConfig, StaircaseConfig,
    };
    pub use ull_data::{generate, Batch, BatchIter, Dataset, SynthCifarConfig};
    pub use ull_energy::{
        audit_dnn, audit_snn, ComparisonRow, DnnAudit, EnergyModel, NeuromorphicModel, SnnAudit,
    };
    pub use ull_nn::{
        cross_entropy_grad, cross_entropy_loss, evaluate, models, train_epoch, LrSchedule, Network,
        NetworkBuilder, Sgd, SgdConfig, TrainConfig,
    };
    pub use ull_obs::MetricsSnapshot;
    pub use ull_robust::{
        anytime_forward, calibrate_margin, evaluate_faulted, profile_envelope, resilience_sweep,
        AnytimeConfig, FaultConfig, FaultedNetwork, InferenceFault, RateEnvelope, SweepConfig,
    };
    pub use ull_snn::{
        evaluate_snn, train_snn_epoch, ActivityReport, InputEncoding, SnnNetwork, SnnSgd,
        SnnTrainConfig, SpikeSpec, SpikeStats,
    };
    pub use ull_tensor::init::seeded_rng;
    pub use ull_tensor::Tensor;
}
