#!/usr/bin/env bash
# Serving smoke test: the TCP wire surface (200 requests including
# expired deadlines, wrong shapes, non-finite pixels, invalid JSON and
# an oversized frame — every reply typed, clean drain), then the chaos
# soak acceptance gate (tiny scale): breaker trips within K batches of
# mid-run fault injection, >= 99 % of post-trip batches on the fallback,
# accuracy within 1 pt of clean, p99 under the deadline, shed requests
# typed, clean run bit-identical across ULL_THREADS {1, 4}.
set -euo pipefail
cd "$(dirname "$0")/.."

# Serving is network + thread heavy; a wedged queue must fail the job,
# not hang it.
SMOKE_TIMEOUT="${SMOKE_TIMEOUT:-900}"

echo "== serve unit + integration tests =="
timeout "$SMOKE_TIMEOUT" cargo test -p ull-serve -q

echo "== wire-protocol smoke (200 requests over TCP) =="
cargo build --release -p ull-bench --bin serve_smoke --bin serve_soak
timeout "$SMOKE_TIMEOUT" ./target/release/serve_smoke

echo "== chaos soak acceptance gate (tiny scale) =="
timeout "$SMOKE_TIMEOUT" ./target/release/serve_soak --gate

echo "== artifact check =="
test -s BENCH_serve.json
grep -q '"batches_to_trip"' BENCH_serve.json
grep -q '"timeline"' BENCH_serve.json
grep -q '"thread_invariant": true' BENCH_serve.json
test -s reports/serve_smoke_metrics.json
grep -q '"serve.served"' reports/serve_smoke_metrics.json

echo "serve smoke test passed"
