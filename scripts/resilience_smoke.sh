#!/usr/bin/env bash
# Resilience smoke test: run the fault-injection determinism suite at two
# thread counts, then the resilience_sweep acceptance gate (tiny scale):
# watchdog detection >= 90 % at BER 1e-2 with zero false positives over 20
# clean checks, anytime inference saving steps within 1 accuracy point,
# and the BENCH_resilience.json artifact present and well-formed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fault determinism across thread counts =="
ULL_THREADS=1 cargo test -p ull-robust -q
ULL_THREADS=4 cargo test -p ull-robust --test determinism -q

echo "== resilience acceptance gate (tiny scale) =="
cargo build --release -p ull-bench --bin resilience_sweep
./target/release/resilience_sweep --gate

echo "== artifact check =="
test -s BENCH_resilience.json
grep -q '"watchdog"' BENCH_resilience.json
grep -q '"anytime"' BENCH_resilience.json
grep -q '"cells"' BENCH_resilience.json

echo "resilience smoke test passed"
