#!/usr/bin/env bash
# Kill-and-resume smoke test: run the quickstart example with checkpointing
# enabled, SIGKILL it mid-run, then rerun and require it to resume from the
# on-disk checkpoint and finish. Exercises the crash-safety contract end to
# end (see DESIGN.md, "Crash-safety and recovery").
#
# Tunables:
#   RESUME_SMOKE_KILL_AFTER  seconds before the first run is killed (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

KILL_AFTER="${RESUME_SMOKE_KILL_AFTER:-20}"
export ULL_CHECKPOINT_DIR="$(mktemp -d)"
trap 'rm -rf "$ULL_CHECKPOINT_DIR"' EXIT

cargo build --release --example quickstart

echo "== first run (SIGKILL after ${KILL_AFTER}s) =="
set +e
timeout -s KILL "$KILL_AFTER" ./target/release/examples/quickstart
status=$?
set -e
if [ "$status" -eq 0 ]; then
    echo "first run finished before the kill timer fired; nothing to resume (pass)"
    exit 0
fi
echo "first run killed (exit $status)"

# The killed run must have committed at least one valid checkpoint.
ls "$ULL_CHECKPOINT_DIR"/*.json > /dev/null

echo "== second run (must resume and finish) =="
./target/release/examples/quickstart
echo "resume smoke test passed"
