#!/usr/bin/env sh
# Tier-1 gate: release build + full workspace test suite.
# Everything is offline — dependencies are vendored under vendor/.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q
