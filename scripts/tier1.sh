#!/usr/bin/env sh
# Tier-1 gate: release build + full workspace test suite.
# Everything is offline — dependencies are vendored under vendor/.
#
# Both steps run under a global timeout so a wedged test (deadlocked
# queue, hung worker) fails the gate instead of stalling CI; override
# with TIER1_TIMEOUT=<seconds>.
set -eu

cd "$(dirname "$0")/.."

TIER1_TIMEOUT="${TIER1_TIMEOUT:-1800}"

run_with_timeout() {
    if command -v timeout >/dev/null 2>&1; then
        timeout "$TIER1_TIMEOUT" "$@"
    else
        "$@"
    fi
}

run_with_timeout cargo build --release --workspace
run_with_timeout cargo test --workspace -q
