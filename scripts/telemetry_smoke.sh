#!/usr/bin/env bash
# Telemetry smoke test: histogram determinism proptests and the serve
# telemetry suite (trace-id propagation, in-band scrape, flight
# recorder), then the live-scrape acceptance gate — scrape polling
# during a chaos soak with a monotone approach to the shutdown
# snapshot, exact final-scrape reconciliation, histogram p99 within one
# log2 bucket of the exact sorted value, a parseable breaker-trip
# blackbox dump, and thread/rerun-invariant trace ids. Finishes with
# obs_summary forward-compat (unknown trace variants are counted, not
# fatal; garbage still fails --validate) and the obs overhead gate with
# histogram calls in the calibration loop.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_TIMEOUT="${SMOKE_TIMEOUT:-900}"

echo "== obs histogram + serve telemetry tests =="
timeout "$SMOKE_TIMEOUT" cargo test -p ull-obs -q
timeout "$SMOKE_TIMEOUT" cargo test -p ull-serve --test telemetry -q

echo "== telemetry probe acceptance gate =="
cargo build --release -p ull-bench --bin telemetry_probe --bin obs_summary --bin obs_overhead
timeout "$SMOKE_TIMEOUT" ./target/release/telemetry_probe --gate

echo "== artifact check =="
test -s BENCH_telemetry.json
grep -q '"scrape_monotone": true' BENCH_telemetry.json
grep -q '"reconciled": true' BENCH_telemetry.json
grep -q '"p99_within_one_bucket": true' BENCH_telemetry.json
grep -q '"blackbox_parsed": true' BENCH_telemetry.json
grep -q '"determinism": true' BENCH_telemetry.json
ls reports/blackbox_telemetry/blackbox-*-breaker_trip.json > /dev/null
ls reports/blackbox_telemetry/blackbox-*-drain.json > /dev/null

echo "== trace validation: unknown variants counted, garbage fatal =="
test -s reports/telemetry_trace.jsonl
TMP_TRACE="$(mktemp)"
trap 'rm -f "$TMP_TRACE"' EXIT
cp reports/telemetry_trace.jsonl "$TMP_TRACE"
# A well-formed event from a future writer must be skipped and counted,
# not fail validation.
echo '{"HistV2": {"key": "future", "value": 1, "sketch": [2, 3]}}' >> "$TMP_TRACE"
SUMMARY_OUT="$(./target/release/obs_summary --validate "$TMP_TRACE")"
grep -q '1 skipped unknown' <<< "$SUMMARY_OUT"
# Structurally broken lines must still fail it.
echo '{broken' >> "$TMP_TRACE"
if ./target/release/obs_summary --validate "$TMP_TRACE" > /dev/null 2>&1; then
  echo "obs_summary --validate accepted garbage" >&2
  exit 1
fi

echo "== obs overhead gate (histograms in the calibration loop) =="
timeout "$SMOKE_TIMEOUT" ./target/release/obs_overhead

echo "telemetry smoke test passed"
