#!/usr/bin/env bash
# Model-lifecycle smoke test: the serve crate's lifecycle/manifest unit
# and fuzz tests, then the chaos acceptance gate — corrupted or
# regressed candidates are never promoted and are quarantined typed,
# mid-canary corruption rolls back within a bounded number of canary
# batches, a clean reload drops zero replies, canary routing and
# post-promotion outputs are bit-identical across reruns, and an engine
# with no manifest behaves byte-identically to one without the
# subsystem. The gate binary itself checks ULL_THREADS {1, 4}
# invariance internally; running it under both settings additionally
# proves the *ambient* thread count cannot leak into any decision.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_TIMEOUT="${SMOKE_TIMEOUT:-900}"

echo "== lifecycle unit + fuzz + integration tests =="
timeout "$SMOKE_TIMEOUT" cargo test -p ull-serve -q

echo "== lifecycle chaos acceptance gate =="
cargo build --release -p ull-bench --bin serve_lifecycle
ULL_THREADS=1 timeout "$SMOKE_TIMEOUT" ./target/release/serve_lifecycle --gate
ULL_THREADS=4 timeout "$SMOKE_TIMEOUT" ./target/release/serve_lifecycle --gate

echo "== artifact check =="
test -s BENCH_lifecycle.json
grep -q '"no_manifest_identical": true' BENCH_lifecycle.json
grep -q '"torn_manifest_tolerated": true' BENCH_lifecycle.json
grep -q '"rerun_identical": true' BENCH_lifecycle.json
grep -q '"thread_invariant": true' BENCH_lifecycle.json
grep -q '"timeline"' BENCH_lifecycle.json
test -s reports/serve_lifecycle_tiny.json

echo "lifecycle smoke test passed"
