#!/usr/bin/env bash
# Packed-kernel smoke test: the weight-stationary packed kernels must be
# bit-identical to the unpacked dense kernels for every shape, sparsity
# and thread count (the packed_diff differential harness), packs must be
# built once per network and survive weight mutation via re-pack (the
# alloc_free reuse/staleness gates), and the kernel_bench acceptance gate
# must show zero counted-work deltas with the BENCH_kernels.json artifact
# present and well-formed. Wall-clock is never gated — this runs on a
# 1-CPU container where only counted work and bit-identity are reliable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== packed-kernel differential harness (tensor) =="
ULL_THREADS=1 cargo test -p ull-tensor --test packed_diff -q
ULL_THREADS=4 cargo test -p ull-tensor --test packed_diff -q

echo "== pack reuse, staleness and allocation gates (snn) =="
ULL_THREADS=1 cargo test -p ull-snn --test alloc_free -q
ULL_THREADS=1 cargo test -p ull-snn packing -q

echo "== packed toggle is inert (disabled run matches default) =="
ULL_PACKED=0 cargo test -p ull-tensor --test packed_diff -q

echo "== kernel acceptance gate =="
cargo build --release -p ull-bench --bin kernel_bench
./target/release/kernel_bench --gate

echo "== artifact check =="
test -s BENCH_kernels.json
grep -q '"pack_builds": 1' BENCH_kernels.json
grep -q '"macs_delta": 0' BENCH_kernels.json
grep -q '"acs_delta": 0' BENCH_kernels.json
grep -q '"logits_bit_identical": true' BENCH_kernels.json

echo "kernel smoke test passed"
