#!/usr/bin/env bash
# Sparse-inference smoke test: the event-driven kernels must be
# bit-identical to the dense path for any dispatch route and thread
# count, and the sparse_forward acceptance gate must show the counted
# work actually shrinking — executed accumulates (tensor.acs) at least
# 2x below nominal dense MACs at <= 10 % mean spike rate, with the
# BENCH_sparse.json artifact present and well-formed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== event-kernel bit-identity (tensor) =="
ULL_THREADS=1 cargo test -p ull-tensor -q
ULL_THREADS=4 cargo test -p ull-tensor --test proptests -q

echo "== dispatch equivalence and allocation gates (snn) =="
ULL_THREADS=1 cargo test -p ull-snn --test sparse --test alloc_free -q
ULL_THREADS=4 cargo test -p ull-snn --test sparse -q

echo "== executed-vs-audited accumulate cross-check (energy) =="
cargo test -p ull-energy --test acs_crosscheck -q

echo "== sparse acceptance gate =="
cargo build --release -p ull-bench --bin sparse_forward
./target/release/sparse_forward --gate

echo "== artifact check =="
test -s BENCH_sparse.json
grep -q '"executed_acs"' BENCH_sparse.json
grep -q '"nominal_macs"' BENCH_sparse.json
grep -q '"logits_bit_identical": true' BENCH_sparse.json

echo "sparse smoke test passed"
