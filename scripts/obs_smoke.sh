#!/usr/bin/env bash
# Observability smoke test: run the quickstart with ULL_TRACE pointed at a
# JSONL file, require every emitted line to parse as a trace event
# (obs_summary --validate), and require the per-layer activity counters to
# be present. Then run the obs_overhead gate, which fails if the disabled
# instrumentation path would cost more than 2% of a representative SNN
# inference workload (see DESIGN.md, "Observability").
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
TRACE="$TRACE_DIR/quickstart.jsonl"

cargo build --release --example quickstart
cargo build --release -p ull-bench --bin obs_summary --bin obs_overhead

echo "== instrumented quickstart (ULL_TRACE=$TRACE) =="
ULL_TRACE="$TRACE" ./target/release/examples/quickstart

echo "== validating trace =="
./target/release/obs_summary --validate "$TRACE" | tee "$TRACE_DIR/summary.txt"

# The trace must contain the span, counter, and per-layer activity streams
# the summary is built from — an empty-but-parseable file must not pass.
grep -q "per-layer spiking activity" "$TRACE_DIR/summary.txt"
grep -q "tensor.macs" "$TRACE_DIR/summary.txt"
grep -q "snn.train.batches" "$TRACE_DIR/summary.txt"

echo "== overhead gate (disabled path must stay under 2%) =="
./target/release/obs_overhead

echo "obs smoke test passed"
